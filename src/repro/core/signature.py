"""Canonical fault signatures: the fleet's deduplication key.

A production *fleet* reports the same bug from many instances at once.
To converge per **failure**, not per report, the serve layer buckets
incoming reports by a canonical *fault signature* — the analog of the
paper's "same failure" matching rule (PC + call stack), made stable
across the two ways coordinates drift in this system:

* **Instrumentation shift.**  Each key–value iteration redeploys a
  module with ``ptwrite`` instructions spliced in, which shifts
  instruction indices inside a block.  :func:`normalize_failure`
  discounts the inserted ``ptwrite``\\ s, so a failure reported by an
  instrumented instance signs identically to the uninstrumented one —
  a bucket survives its own redeploys.
* **Run-to-run noise.**  Thread ids and faulting addresses vary across
  occurrences of one bug (ASLR, allocator state); the signature
  deliberately excludes them, exactly as
  :meth:`~repro.interp.failures.FailureInfo.matches` does.

The signature carries a short stable :attr:`~FaultSignature.digest`
(SHA-256 over the canonical fields) used as the bucket key and in
telemetry/report output, where the full tuple would be unwieldy.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Tuple

from ..interp.failures import FailureInfo
from ..ir import instructions as ins
from ..ir.module import Module, ProgramPoint

__all__ = ["FaultSignature", "canonical_signature", "normalize_failure"]


def normalize_failure(module: Module, failure: FailureInfo) -> FailureInfo:
    """Map a failure point back to pre-instrumentation coordinates.

    Inserted ``ptwrite`` instructions shift indices within a block, so
    failure signatures are compared after discounting them — the analog
    of REPT/ER matching failures across binary versions by symbolized
    PC.  ``module`` must be the (possibly instrumented) module the
    failing run executed.
    """
    block = module.function(failure.point.func).block(failure.point.block)
    upto = block.instrs[: failure.point.index]
    shift = sum(1 for instr in upto if isinstance(instr, ins.PtWrite))
    point = ProgramPoint(failure.point.func, failure.point.block,
                         failure.point.index - shift)
    return dataclasses.replace(failure, point=point)


@dataclass(frozen=True)
class FaultSignature:
    """Canonical identity of a fault, stable across instances and
    instrumented redeploys.

    ``site`` is the normalized failure point rendered as
    ``func:block:index``; ``call_stack`` is the failing thread's frame
    names innermost-last.  Transient per-occurrence detail (tid,
    faulting address, message text) is excluded on purpose: two reports
    are the same fault exactly when their signatures are equal.
    """

    kind: str
    site: str
    call_stack: Tuple[str, ...] = ()

    @cached_property
    def digest(self) -> str:
        """Short stable content hash — the bucket/routing key."""
        blob = json.dumps([self.kind, self.site, list(self.call_stack)],
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "site": self.site,
                "call_stack": list(self.call_stack),
                "digest": self.digest}

    def __str__(self) -> str:
        stack = " < ".join(reversed(self.call_stack)) or "?"
        return f"{self.digest} {self.kind} at {self.site} [{stack}]"


def canonical_signature(module: Module,
                        failure: FailureInfo) -> FaultSignature:
    """The fault signature of one failure occurrence.

    ``module`` is the module the failing run executed — needed to
    discount its ``ptwrite`` instrumentation from the failure point so
    every iteration of one bucket signs identically.
    """
    normalized = normalize_failure(module, failure)
    return FaultSignature(
        kind=normalized.kind.value,
        site=str(normalized.point),
        call_stack=tuple(normalized.call_stack))
