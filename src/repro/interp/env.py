"""Environment model: the sources of non-determinism a guest program sees.

A guest reads from named byte streams (``stdin``, ``net``, ``file:cfg``,
...) via the ``input`` instruction.  The special ``clock`` stream returns a
monotonically increasing counter.  Streams that run dry return zero bytes,
so executions stay deterministic for a given :class:`Environment`.

The environment also carries the scheduler parameters (quantum, rotation)
because thread interleaving is environment non-determinism too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

CLOCK_STREAM = "clock"

#: bytes of stream input covered by one buffered read(2) call
IO_CHUNK = 64


@dataclass
class EnvEvent:
    """One non-deterministic event, as a record/replay system sees it."""

    stream: str
    offset: int
    data: bytes


class Environment:
    """Concrete environment: named byte streams plus a virtual clock."""

    def __init__(self, streams: Dict[str, bytes] = None, *,
                 clock_start: int = 1_000_000, clock_step: int = 7,
                 quantum: int = 50):
        self.streams: Dict[str, bytes] = dict(streams or {})
        self.clock_start = clock_start
        self.clock_step = clock_step
        #: scheduler quantum in instructions (thread interleaving knob)
        self.quantum = quantum
        self._cursors: Dict[str, int] = {}
        self._clock = clock_start
        self.events: List[EnvEvent] = []

    def clone(self) -> "Environment":
        """A fresh environment with the same contents and cursors reset."""
        return Environment(dict(self.streams), clock_start=self.clock_start,
                           clock_step=self.clock_step, quantum=self.quantum)

    def read(self, stream: str, size: int) -> bytes:
        """Read ``size`` bytes; dry streams yield zeros."""
        if stream == CLOCK_STREAM:
            value = self._clock
            self._clock += self.clock_step
            data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
            self.events.append(EnvEvent(stream, value, data))
            return data
        cursor = self._cursors.get(stream, 0)
        content = self.streams.get(stream, b"")
        data = content[cursor:cursor + size]
        if len(data) < size:
            data = data + b"\x00" * (size - len(data))
        self._cursors[stream] = cursor + size
        self.events.append(EnvEvent(stream, cursor, data))
        return data

    def bytes_consumed(self, stream: str) -> int:
        return self._cursors.get(stream, 0)

    def event_count(self) -> int:
        """Number of non-deterministic events (rr's recording unit)."""
        return len(self.events)

    def syscall_estimate(self) -> int:
        """Estimated syscalls for this execution's I/O.

        Programs read input through buffered stdio, so one read(2)
        covers :data:`IO_CHUNK` bytes of a stream; clock reads are one
        syscall each.  This is the unit rr pays its per-event cost on.
        """
        clock_reads = sum(1 for e in self.events
                          if e.stream == CLOCK_STREAM)
        stream_reads = sum((cursor + IO_CHUNK - 1) // IO_CHUNK
                           for cursor in self._cursors.values())
        return clock_reads + stream_reads + 2  # +2: spawn/exit
