"""Cross-process trace identity: one tree out of many registries.

Every :class:`~repro.telemetry.registry.Telemetry` registry owns a
``trace_id`` and stamps each span with a ``span_id``/``parent_id``
pair.  When work crosses a process boundary (the batch runner, the
gap-shard schedulers), the parent captures a :class:`TraceContext` —
trace id, the currently open span's id, and the parent timeline's
origin in wall-clock terms — and ships it to the worker, whose
registry then

* adopts the parent's ``trace_id`` (worker spans join the same trace),
* parents its root spans on the handoff span (the tree stays linked
  across the ``ProcessPoolExecutor`` boundary), and
* aligns its event clock: worker timestamps are rebased so every
  process reports ``ts`` relative to the *root* registry's epoch, which
  makes merged streams directly comparable and exportable as one
  timeline.

The context is a frozen dataclass of scalars — picklable for
``initargs``/task arguments and JSON-serializable for anything that
needs to cross a wire instead of a fork.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["TraceContext", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 64-bit trace identifier (16 hex chars)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The serializable handoff record for cross-process tracing.

    ``wall_origin`` is the parent timeline's zero point expressed as a
    wall-clock (``time.time()``) instant: a worker registry subtracts
    it from its own start time to learn how far into the parent's
    timeline it was born, and offsets every emitted ``ts`` by that —
    monotonic clocks are per-process, but the wall clock is shared, so
    this aligns them at handoff.  ``None`` means "do not align" (the
    worker keeps its own epoch).
    """

    trace_id: str
    span_id: Optional[str] = None
    wall_origin: Optional[float] = None

    def to_dict(self) -> Dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "wall_origin": self.wall_origin}

    @classmethod
    def from_dict(cls, data: Dict) -> "TraceContext":
        return cls(trace_id=data["trace_id"],
                   span_id=data.get("span_id"),
                   wall_origin=data.get("wall_origin"))
