#!/usr/bin/env python3
"""Reproduce the SQLite 7be932d NULL dereference (Table 1, row 3).

Shows the paper's §5.2 accuracy point in action: the generated SQL may
differ from the production query — different keyword *case* (``sEleCT``)
and different identifier names — yet it provably drives the engine down
the same control flow into the same crash, because keywords are
case-insensitive and identifier names don't change query semantics.

Run:  python examples/sqlite_null_deref.py
"""

from repro import Interpreter
from repro.core import ExecutionReconstructor, ProductionSite
from repro.workloads import get_workload


def main():
    workload = get_workload("sqlite-7be932d")
    module = workload.fresh_module()

    production_env = workload.failing_env(1)
    original_query = production_env.streams["sql"]
    crash = Interpreter(module, workload.failing_env(1)).run()
    print("=== production ===")
    print(f"query   : {original_query!r}")
    print(f"failure : {crash.failure}")
    print(f"trace   : {crash.instr_count} instructions, "
          f"{crash.branch_count} branches\n")

    print("=== execution reconstruction ===")
    er = ExecutionReconstructor(module, work_limit=workload.work_limit)
    report = er.reconstruct(ProductionSite(workload.failing_env))
    for iteration in report.iterations:
        line = (f"occurrence {iteration.occurrence}: {iteration.status:9s} "
                f"solver {iteration.symex_modelled_seconds:6.1f} modelled-s")
        if iteration.recorded_items:
            regs = ", ".join(f"{i.register}" for i in iteration.recorded_items)
            line += f"  -> record [{regs}]"
        print(line)

    generated = report.test_case.streams["sql"]
    print(f"\ngenerated query: {generated!r}")
    print(f"original  query: {original_query!r}")
    if generated != original_query:
        print("-> inputs differ (case / identifiers), control flow is "
              "identical — the paper's accuracy guarantee")

    replay = Interpreter(module, report.test_case.environment()).run()
    print(f"\nreplay: {replay.failure}")
    assert replay.failure is not None
    assert replay.failure.kind == workload.expected_kind


if __name__ == "__main__":
    main()
