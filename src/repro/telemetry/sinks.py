"""Event sinks: where the structured telemetry stream goes.

The registry forwards every structured event (spans closing, point
events, final metric snapshots) to exactly one sink.  The default
:class:`NullSink` advertises ``enabled = False`` so instrumented code —
and the registry itself — can skip event *construction* entirely,
keeping the disabled-telemetry overhead near zero.
"""

from __future__ import annotations

import io
import json
import logging
import pathlib
from typing import Dict, List, Union

__all__ = ["Sink", "NullSink", "MemorySink", "JsonlSink", "TeeSink",
           "NULL_SINK"]

logger = logging.getLogger(__name__)


class Sink:
    """Base sink interface; subclasses override :meth:`emit`."""

    #: registries skip building event dicts when the sink is disabled
    enabled = True

    def emit(self, event: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources; emit() must not be called after."""


class NullSink(Sink):
    """Drops everything; the zero-overhead default."""

    enabled = False

    def emit(self, event: Dict) -> None:
        pass


#: shared default instance — stateless, safe to reuse everywhere
NULL_SINK = NullSink()


class MemorySink(Sink):
    """Buffers events in a list; the test/debugging sink."""

    def __init__(self) -> None:
        self.events: List[Dict] = []

    def emit(self, event: Dict) -> None:
        self.events.append(event)

    def named(self, name: str) -> List[Dict]:
        return [e for e in self.events if e.get("name") == name]

    def spans(self, name: str = "") -> List[Dict]:
        return [e for e in self.events if e.get("type") == "span"
                and (not name or e.get("name") == name)]

    def clear(self) -> None:
        self.events.clear()


class JsonlSink(Sink):
    """Appends one JSON object per line to a file (or file-like object).

    The format is the interchange surface of the telemetry subsystem:
    ``repro reproduce --telemetry out.jsonl`` writes it and ``repro
    stats out.jsonl`` renders it, but any ``jq``-style tool works too.

    Usable as a context manager (``with JsonlSink(path) as sink:``);
    exit closes the sink, which always flushes buffered lines — even
    for a caller-owned file object, whose handle is left open.
    """

    def __init__(self, target: Union[str, pathlib.Path, io.TextIOBase]):
        if isinstance(target, (str, pathlib.Path)):
            self._fh = open(target, "w", encoding="utf-8")
            self._owns_fh = True
        else:
            self._fh = target
            self._owns_fh = False
        self._closed = False

    def emit(self, event: Dict) -> None:
        if self._closed:
            raise ValueError("emit() on a closed JsonlSink")
        self._fh.write(json.dumps(event, default=str) + "\n")

    def flush(self) -> None:
        """Push buffered lines to the OS without closing the stream."""
        if not self._closed:
            self._fh.flush()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.flush()
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TeeSink(Sink):
    """Forwards every event to several sinks (e.g. JSONL file + memory
    buffer for the trace exporter).  Enabled iff any target is."""

    def __init__(self, *sinks: Sink):
        self.sinks = [sink for sink in sinks if sink is not None]

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return any(sink.enabled for sink in self.sinks)

    def emit(self, event: Dict) -> None:
        for sink in self.sinks:
            if sink.enabled:
                sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_jsonl(path: Union[str, pathlib.Path]) -> List[Dict]:
    """Load a JSONL event log back into a list of event dicts.

    A malformed *trailing* line — the torn tail of a crashed or still-
    writing producer — is skipped with a warning and counted on the
    current registry (``telemetry.read.torn_lines``), mirroring
    ``DiskSolverCache``'s torn-tail handling.  Corruption anywhere
    earlier still raises: a half-written last line is expected, a
    mangled middle is not.
    """
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line.strip() for line in fh]
    last = max((i for i, line in enumerate(lines) if line), default=-1)
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if index != last:
                raise
            logger.warning("skipping torn trailing line in %s", path)
            from repro import telemetry  # lazy: sinks loads before the pkg
            telemetry.count("telemetry.read.torn_lines")
    return events
