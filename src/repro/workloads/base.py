"""Workload descriptors: the Table-1 bug suite's common shape.

Each workload packages a miniature application (built in the IR), the
hidden production input that triggers its bug, a benign performance
benchmark (Fig. 6), and the ER configuration used to reproduce it.

The applications are *structural* ports: a tokenizer+keyword-table SQL
front end for the SQLite bugs, a serializer with escape expansion for
PHP-74194, a thread pool with a shared connection table for memcached,
and so on — the same code patterns (symbolic write chains, large
lookup tables, length-field arithmetic) that make the real bugs hard
for symbolic execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.module import Module
from ..solver.budget import WORK_PER_SECOND


@dataclass
class Workload:
    """One Table-1 row: application, bug, inputs, and ER configuration."""

    name: str            # registry key, e.g. 'sqlite-7be932d'
    app: str             # display name, e.g. 'SQLite 3.27.0'
    bug_id: str          # upstream identifier
    bug_type: str        # Table-1 'Bug Type' column
    multithreaded: bool
    expected_kind: FailureKind
    build: Callable[[], Module]
    failing_env: Callable[[int], Environment]
    benign_env: Callable[[int], Environment]
    bench_name: str      # Table-1 'Performance Benchmark' column
    #: solver budget per query (the 30 s timeout analog), in work units
    work_limit: int = 2 * WORK_PER_SECOND
    max_occurrences: int = 20
    paper_occurrences: int = 0   # Table-1 '#Occur' for comparison
    paper_instrs: int = 0        # Table-1 '#Instr(x86_64)'

    _module: Optional[Module] = field(default=None, repr=False)

    def module(self) -> Module:
        """The built (and cached) application module."""
        if self._module is None:
            self._module = self.build()
        return self._module

    def fresh_module(self) -> Module:
        return self.module().clone()
