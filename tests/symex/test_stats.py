"""SymexStats: bounded progress sampling and the JSON surface."""

from repro.symex.result import PROGRESS_SAMPLE_CAP, SymexStats


class TestProgressSampling:
    def test_small_runs_keep_every_sample(self):
        stats = SymexStats()
        for i in range(100):
            stats.add_progress(i, i * 10)
        assert stats.progress == [(i, i * 10) for i in range(100)]

    def test_growth_is_bounded_above_the_cap(self):
        stats = SymexStats()
        n = PROGRESS_SAMPLE_CAP * 20
        for i in range(n):
            stats.add_progress(i, i)
        assert len(stats.progress) < PROGRESS_SAMPLE_CAP

    def test_decimated_series_stays_monotone_and_spans_run(self):
        stats = SymexStats()
        n = PROGRESS_SAMPLE_CAP * 8
        for i in range(n):
            stats.add_progress(i, 2 * i)
        xs = [x for x, _ in stats.progress]
        ys = [y for _, y in stats.progress]
        assert xs == sorted(xs) and ys == sorted(ys)
        # the retained sample still covers most of the run
        assert xs[-1] >= n * 0.8

    def test_to_dict_reports_sampling_state(self):
        stats = SymexStats(instrs_executed=10, solver_calls=2,
                           solver_work=400_000, wall_seconds=0.5)
        stats.add_progress(5, 200_000)
        d = stats.to_dict()
        assert d["instrs_executed"] == 10
        assert d["solver_calls"] == 2
        assert d["modelled_seconds"] == 2.0
        assert d["progress_samples"] == 1
        assert d["progress_stride"] == 1

    def test_stride_doubles_per_decimation(self):
        stats = SymexStats()
        for i in range(PROGRESS_SAMPLE_CAP):
            stats.add_progress(i, i)
        assert stats.to_dict()["progress_stride"] == 2
