"""End-to-end reconstruction through a degraded trace pipeline.

Combines the §4 mapping loss (8.5 % of TNT bits become gaps) with §3.4
per-CPU buffer merging (equal-timestamp chunk order lost) and runs the
full iterative loop with trace recovery enabled.
"""

import pytest

from repro.core import ExecutionReconstructor, ProductionSite
from repro.trace.degrade import gap_count
from repro.workloads import get_workload

PIPELINE_TARGETS = ["bash-108885", "libpng-2004-0597",
                    "objdump-2018-6323", "python-2018-1000030",
                    "memcached-2019-11596"]


@pytest.mark.parametrize("name", PIPELINE_TARGETS)
def test_reconstruction_with_degraded_traces(name):
    workload = get_workload(name)
    er = ExecutionReconstructor(workload.fresh_module(),
                                work_limit=workload.work_limit * 20,
                                max_occurrences=15,
                                trace_recovery=True)
    site = ProductionSite(workload.failing_env, mapping_loss=0.085,
                          per_cpu_buffers=True)
    report = er.reconstruct(site)
    assert report.success and report.verified


def test_degradation_actually_happens():
    workload = get_workload("libpng-2004-0597")
    site = ProductionSite(workload.failing_env, mapping_loss=0.5)
    occurrence = site.run_once(workload.fresh_module())
    assert gap_count(occurrence.trace) > 50


def test_exact_pipeline_unaffected_by_recovery_driver():
    workload = get_workload("bash-108885")
    er = ExecutionReconstructor(workload.fresh_module(),
                                work_limit=workload.work_limit,
                                trace_recovery=True)
    report = er.reconstruct(ProductionSite(workload.failing_env))
    assert report.success and report.occurrences == 1


def test_exact_driver_cannot_handle_gaps():
    """Without recovery, a degraded trace is a hard error (documented)."""
    from repro.errors import ReconstructionError

    workload = get_workload("bash-108885")
    er = ExecutionReconstructor(workload.fresh_module(),
                                work_limit=workload.work_limit,
                                max_occurrences=3,
                                trace_recovery=False)
    site = ProductionSite(workload.failing_env, mapping_loss=1.0)
    with pytest.raises(ReconstructionError):
        er.reconstruct(site)
