"""REPT-style reverse-execution baseline (§2, §5.2 accuracy comparison).

REPT reconstructs data values from (a) the control-flow trace and (b) the
memory/register dump at the failure, by executing the instruction
sequence *backwards* with error-correcting forward passes.  It is
best-effort: when a store's target address is unknown it assumes
no-alias and keeps stale memory knowledge — the unsound guess that makes
REPT's recovered values *incorrect* (not just missing) on long traces,
which is exactly the behaviour the paper measures (15–60 % wrong beyond
100 K instructions).

The trace replayer here reuses the interpreter to enumerate the executed
instruction sequence; that sequence is fully determined by the PT trace
(branch bits + deterministic calls/returns), so this is equivalent to
decoding, without duplicating the control-flow walker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..interp.env import Environment
from ..interp.interpreter import Interpreter
from ..ir import instructions as ins
from ..ir.module import Module, ProgramPoint
from ..ir.ops import apply_binop, apply_cmp
from ..ir.types import mask

RegKey = Tuple[int, str]  # (frame id, register)


@dataclass
class TraceStep:
    """One executed instruction with its dynamic context."""

    index: int
    tid: int
    frame: int
    point: ProgramPoint
    instr: ins.Instr
    #: ground truth: value of the destination register after the step
    truth: Optional[int] = None
    #: branch outcome for Br steps
    taken: Optional[bool] = None
    #: concrete address for memory steps (derivable control info is not,
    #: but kept for scoring store-alias mistakes)
    ground_addr: Optional[int] = None
    caller_frame: Optional[int] = None
    ret_reg: Optional[str] = None


@dataclass
class ReptReport:
    """Recovery-accuracy summary for one analyzed execution."""

    total_defs: int
    correct: int
    incorrect: int
    unknown: int
    #: (distance-from-failure bucket upper bound, fraction wrong-or-missing)
    by_distance: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        if self.total_defs == 0:
            return 0.0
        return (self.incorrect + self.unknown) / self.total_defs

    @property
    def incorrect_rate(self) -> float:
        if self.total_defs == 0:
            return 0.0
        return self.incorrect / self.total_defs


class _Collector:
    """Runs the program once, collecting the step sequence + ground truth."""

    def __init__(self, module: Module, env: Environment):
        self.module = module
        self.env = env
        self.steps: List[TraceStep] = []
        self._frame_ids: Dict[int, int] = {}
        self._next_frame = 0
        self._pending: Dict[int, TraceStep] = {}  # tid -> last step w/ dest

    def collect(self):
        interp = Interpreter(self.module, self.env, on_step=self._on_step)
        result = interp.run()
        self._interp = interp
        # resolve any still-pending destination truths
        for tid, step in self._pending.items():
            thread = interp.threads[tid]
            for frame in thread.frames:
                if self._frame_ids.get(id(frame)) == step.frame:
                    dest = step.instr.dest_register()
                    step.truth = frame.regs.get(dest)
        return result, self.steps

    def _frame_id(self, frame) -> int:
        key = id(frame)
        if key not in self._frame_ids:
            self._frame_ids[key] = self._next_frame
            self._next_frame += 1
        return self._frame_ids[key]

    def _on_step(self, thread, point, instr):
        frame = thread.frame
        fid = self._frame_id(frame)
        # resolve the previous step's destination value for this thread
        pending = self._pending.pop(thread.tid, None)
        if pending is not None:
            dest = pending.instr.dest_register()
            for fr in thread.frames:
                if self._frame_ids.get(id(fr)) == pending.frame:
                    pending.truth = fr.regs.get(dest)
                    break
        step = TraceStep(index=len(self.steps), tid=thread.tid, frame=fid,
                         point=point, instr=instr)
        if isinstance(instr, ins.Br):
            value = frame.regs.get(instr.cond) if isinstance(instr.cond, str) \
                else instr.cond
            step.taken = bool(value)
        if isinstance(instr, (ins.Load, ins.Store, ins.HeapFree)):
            addr = frame.regs.get(instr.addr) if isinstance(instr.addr, str) \
                else instr.addr
            step.ground_addr = addr
        if isinstance(instr, ins.Ret) and len(thread.frames) >= 2:
            step.caller_frame = self._frame_id(thread.frames[-2])
            step.ret_reg = frame.ret_reg
        if instr.dest_register() is not None:
            self._pending[thread.tid] = step
        self.steps.append(step)


class ReptAnalyzer:
    """Reverse+forward data recovery over a failing execution."""

    def __init__(self, passes: int = 2):
        self.passes = passes

    def analyze(self, module: Module, env: Environment) -> ReptReport:
        result, steps = self._collect(module, env)
        if result.failure is None:
            raise ValueError("REPT analyzes failing executions")
        recovered = self._recover(module, steps, result)
        return self._score(steps, recovered)

    # -- data collection -------------------------------------------------

    def _collect(self, module, env):
        collector = _Collector(module, env)
        result, steps = collector.collect()
        self._final_interp = collector._interp
        return result, steps

    # -- recovery ----------------------------------------------------------

    def _recover(self, module: Module, steps: List[TraceStep],
                 result) -> Dict[int, int]:
        interp = self._final_interp
        # core dump: final memory + registers of the failing thread's stack
        mem: Dict[int, int] = {}
        for base, data in interp.memory.snapshot().items():
            for i, byte in enumerate(data):
                mem[base + i] = byte
        regs: Dict[RegKey, int] = {}
        fail_tid = result.failure.tid
        thread = interp.threads[fail_tid]
        recovered: Dict[int, int] = {}
        # frame ids were assigned in call order; recover mapping by
        # replaying frame identity through the steps themselves:
        # the last step of each frame tells us which frames are live.
        # Simpler: seed the dump registers via the steps' frame ids by
        # matching on function name from the failing thread's frames.
        live_frames = {}
        for step in reversed(steps):
            if step.tid != fail_tid:
                continue
            if step.frame not in live_frames:
                live_frames[step.frame] = step.point.func
        for fr in thread.frames:
            for fid, func in live_frames.items():
                if func == fr.func.name and not any(
                        k[0] == fid for k in regs):
                    for reg, value in fr.regs.items():
                        regs[(fid, reg)] = value
                    break

        for _ in range(self.passes):
            self._backward_pass(steps, dict(regs), dict(mem), recovered)
            self._forward_pass(module, steps, recovered)
        return recovered

    def _backward_pass(self, steps, regs: Dict[RegKey, int],
                       mem: Dict[int, int], recovered: Dict[int, int]):
        for step in reversed(steps):
            instr = step.instr
            frame = step.frame
            dest = instr.dest_register()
            dest_after = regs.get((frame, dest)) if dest else None
            if dest is not None and dest_after is not None:
                recovered.setdefault(step.index, dest_after)

            if isinstance(instr, ins.Br):
                if isinstance(instr.cond, str) and step.taken is not None:
                    regs[(frame, instr.cond)] = int(step.taken)
                continue
            if isinstance(instr, ins.Store):
                addr = self._operand(regs, frame, instr.addr)
                if addr is not None:
                    if isinstance(instr.value, str):
                        value = self._load_mem(mem, addr, instr.size)
                        if value is not None:
                            regs[(frame, instr.value)] = value
                    for i in range(instr.size):
                        mem.pop(addr + i, None)
                # addr unknown: REPT's no-alias gamble — keep memory as-is
                continue
            if dest is None:
                continue
            # crossing the definition: the register's prior value is lost
            regs.pop((frame, dest), None)
            if isinstance(instr, ins.Const):
                recovered[step.index] = mask(instr.value)
            elif isinstance(instr, ins.BinOp) and dest_after is not None:
                self._invert_binop(regs, frame, instr, dest_after)
            elif isinstance(instr, ins.Gep) and dest_after is not None:
                base = self._operand(regs, frame, instr.base)
                index = self._operand(regs, frame, instr.index)
                if base is None and index is not None and \
                        isinstance(instr.base, str):
                    regs[(frame, instr.base)] = mask(
                        dest_after - index * instr.scale)
                elif index is None and base is not None and instr.scale == 1 \
                        and isinstance(instr.index, str):
                    regs[(frame, instr.index)] = mask(dest_after - base)
            elif isinstance(instr, ins.Load) and dest_after is not None:
                addr = self._operand(regs, frame, instr.addr)
                if addr is not None:
                    for i in range(instr.size):
                        mem[addr + i] = (dest_after >> (8 * i)) & 0xFF

    def _forward_pass(self, module: Module, steps, recovered: Dict[int, int]):
        regs: Dict[RegKey, int] = {}
        mem: Dict[int, int] = {}
        # data section is known statically
        from ..interp.memory import Memory

        layout = Memory(module)
        for base, data in layout.snapshot().items():
            for i, byte in enumerate(data):
                mem[base + i] = byte
        alloc = _AllocReplayer(layout)
        call_stack: Dict[int, List[Tuple[int, Optional[str]]]] = {}

        for step in steps:
            instr = step.instr
            frame = step.frame
            dest = instr.dest_register()
            value: Optional[int] = None
            if isinstance(instr, ins.Const):
                value = mask(instr.value)
            elif isinstance(instr, ins.BinOp):
                lhs = self._operand(regs, frame, instr.lhs)
                rhs = self._operand(regs, frame, instr.rhs)
                if lhs is not None and rhs is not None and not (
                        instr.op in ("udiv", "sdiv", "urem", "srem")
                        and mask(rhs, instr.width) == 0):
                    value = apply_binop(instr.op, lhs, rhs, instr.width)
            elif isinstance(instr, ins.Cmp):
                lhs = self._operand(regs, frame, instr.lhs)
                rhs = self._operand(regs, frame, instr.rhs)
                if lhs is not None and rhs is not None:
                    value = apply_cmp(instr.op, lhs, rhs, instr.width)
                elif step.taken is not None:
                    pass
            elif isinstance(instr, (ins.GlobalAddr, ins.FrameAlloc,
                                    ins.HeapAlloc)):
                value = alloc.address_of(step)
            elif isinstance(instr, ins.Gep):
                base = self._operand(regs, frame, instr.base)
                index = self._operand(regs, frame, instr.index)
                if base is not None and index is not None:
                    value = mask(base + index * instr.scale)
            elif isinstance(instr, ins.Load):
                addr = self._operand(regs, frame, instr.addr)
                if addr is not None:
                    value = self._load_mem(mem, addr, instr.size)
            elif isinstance(instr, ins.Store):
                addr = self._operand(regs, frame, instr.addr)
                stored = self._operand(regs, frame, instr.value)
                if addr is not None:
                    for i in range(instr.size):
                        if stored is None:
                            mem.pop(addr + i, None)
                        else:
                            mem[addr + i] = (stored >> (8 * i)) & 0xFF
                # unknown addr: no-alias assumption again (stale memory)
            elif isinstance(instr, ins.Br):
                if isinstance(instr.cond, str) and step.taken is not None:
                    regs.setdefault((frame, instr.cond), int(step.taken))

            if dest is not None:
                if value is not None:
                    regs[(frame, dest)] = value
                    recovered.setdefault(step.index, value)
                else:
                    regs.pop((frame, dest), None)

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _operand(regs, frame, operand) -> Optional[int]:
        if isinstance(operand, str):
            return regs.get((frame, operand))
        return mask(operand)

    @staticmethod
    def _load_mem(mem: Dict[int, int], addr: int, size: int) -> Optional[int]:
        value = 0
        for i in range(size):
            byte = mem.get(addr + i)
            if byte is None:
                return None
            value |= byte << (8 * i)
        return value

    def _invert_binop(self, regs, frame, instr, dest_after):
        lhs = self._operand(regs, frame, instr.lhs)
        rhs = self._operand(regs, frame, instr.rhs)
        invertible = instr.op in ("add", "sub", "xor")
        if not invertible:
            return
        if lhs is None and rhs is not None and isinstance(instr.lhs, str) \
                and instr.lhs != instr.dest:
            if instr.op == "add":
                regs[(frame, instr.lhs)] = mask(dest_after - rhs, instr.width)
            elif instr.op == "sub":
                regs[(frame, instr.lhs)] = mask(dest_after + rhs, instr.width)
            else:
                regs[(frame, instr.lhs)] = mask(dest_after ^ rhs, instr.width)
        elif rhs is None and lhs is not None and isinstance(instr.rhs, str) \
                and instr.rhs != instr.dest:
            if instr.op == "add":
                regs[(frame, instr.rhs)] = mask(dest_after - lhs, instr.width)
            elif instr.op == "sub":
                regs[(frame, instr.rhs)] = mask(lhs - dest_after, instr.width)
            else:
                regs[(frame, instr.rhs)] = mask(dest_after ^ lhs, instr.width)

    # -- scoring -----------------------------------------------------------

    def _score(self, steps: List[TraceStep],
               recovered: Dict[int, int]) -> ReptReport:
        defs = [s for s in steps if s.instr.dest_register() is not None
                and s.truth is not None]
        correct = incorrect = unknown = 0
        mistakes: List[Tuple[int, bool]] = []  # (distance from end, bad?)
        end = len(steps)
        for step in defs:
            value = recovered.get(step.index)
            distance = end - step.index
            if value is None:
                unknown += 1
                mistakes.append((distance, True))
            elif value == step.truth:
                correct += 1
                mistakes.append((distance, False))
            else:
                incorrect += 1
                mistakes.append((distance, True))
        report = ReptReport(total_defs=len(defs), correct=correct,
                            incorrect=incorrect, unknown=unknown)
        if defs:
            buckets = [64, 256, 1024, 4096, 16384, 1 << 30]
            for bound in buckets:
                in_bucket = [bad for dist, bad in mistakes if dist <= bound]
                if in_bucket:
                    report.by_distance.append(
                        (bound, sum(in_bucket) / len(in_bucket)))
        return report


class _AllocReplayer:
    """Re-derives deterministic allocation addresses in trace order."""

    def __init__(self, layout):
        self._layout = layout
        self._cache: Dict[int, int] = {}

    def address_of(self, step: TraceStep) -> Optional[int]:
        if step.index in self._cache:
            return self._cache[step.index]
        instr = step.instr
        if isinstance(instr, ins.GlobalAddr):
            addr = self._layout.global_addrs.get(instr.name)
        elif isinstance(instr, ins.FrameAlloc):
            addr = self._layout.alloc_stack(
                f"rept.{instr.name}", instr.size).base
        elif isinstance(instr, ins.HeapAlloc):
            size = instr.size if isinstance(instr.size, int) else 0
            addr = self._layout.alloc_heap(size).base
        else:
            addr = None
        self._cache[step.index] = addr
        return addr
