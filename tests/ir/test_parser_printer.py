"""Textual IR: parsing, printing, and the round-trip property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IRParseError
from repro.ir import format_module, parse_module, verify_module
from repro.ir import instructions as ins
from repro.ir.builder import ModuleBuilder

SAMPLE = """
module sample

global V 1024
global msg 3 = 686900

func helper(%a, %b) {
entry:
  %x = add.32 %a, %b
  %c = cmp ult.32 %x, 256
  br %c, yes, no
yes:
  ret %x
no:
  ret 0
}

func main() {
entry:
  %i = input stdin, 2
  %r = call helper(%i, 7)
  output stdout, %r, 4
  assert %r, 'must be nonzero'
  ret
}
"""


class TestParser:
    def test_parses_sample(self):
        m = parse_module(SAMPLE)
        verify_module(m)
        assert m.name == "sample"
        assert set(m.functions) == {"helper", "main"}
        assert m.globals["V"].size == 1024
        assert m.globals["msg"].init == b"hi\x00"

    def test_comments_ignored(self):
        m = parse_module("module m\nfunc main() {\nentry:\n"
                         "  ret 0 ; trailing comment\n}")
        assert m.functions["main"]

    def test_unknown_instruction(self):
        with pytest.raises(IRParseError):
            parse_module("func main() {\nentry:\n  frobnicate %x\n}")

    def test_error_carries_line_number(self):
        try:
            parse_module("module m\nfunc main() {\nentry:\n  bogus\n}")
        except IRParseError as exc:
            assert exc.line_no == 4
        else:
            pytest.fail("expected IRParseError")

    def test_instruction_outside_function(self):
        with pytest.raises(IRParseError):
            parse_module("ret 0")

    def test_instruction_before_label(self):
        with pytest.raises(IRParseError):
            parse_module("func main() {\n  ret 0\n}")

    def test_nested_function_rejected(self):
        with pytest.raises(IRParseError):
            parse_module("func a() {\nfunc b() {\n}\n}")

    def test_bad_operand(self):
        with pytest.raises(IRParseError):
            parse_module("func main() {\nentry:\n  %x = add.64 $1, 2\n}")

    def test_store_sizes(self):
        m = parse_module("func main() {\nentry:\n  %p = const 65536\n"
                         "  store.2 %p, 7\n  ret\n}")
        store = m.functions["main"].blocks["entry"].instrs[1]
        assert isinstance(store, ins.Store) and store.size == 2

    def test_string_escape_roundtrip(self):
        m = parse_module('func main() {\nentry:\n  abort "a\\nb"\n}')
        instr = m.functions["main"].blocks["entry"].instrs[0]
        assert instr.message == "a\nb"


class TestRoundTrip:
    def test_sample_roundtrip(self):
        m = parse_module(SAMPLE)
        text = format_module(m)
        again = parse_module(text)
        assert format_module(again) == text

    def test_fixture_roundtrip(self, table_module):
        text = format_module(table_module)
        again = parse_module(text)
        verify_module(again)
        assert format_module(again) == text


# -- property: random builder programs survive the round-trip -----------

_regs = st.sampled_from(["%a", "%b", "%c"])
_binops = st.sampled_from(sorted(ins.BINARY_OPS))
_cmps = st.sampled_from(sorted(ins.CMP_OPS))
_widths = st.sampled_from((8, 16, 32, 64))


@st.composite
def straightline_modules(draw):
    b = ModuleBuilder("prop")
    b.global_("G", 64)
    f = b.function("main", [])
    f.block("entry")
    f.const(draw(st.integers(0, 2**32)), dest="%a")
    f.input("stdin", draw(st.sampled_from((1, 2, 4, 8))), dest="%b")
    f.const(draw(st.integers(0, 255)), dest="%c")
    for _ in range(draw(st.integers(1, 8))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            f.binop(draw(_binops), draw(_regs),
                    draw(st.integers(1, 255)), width=draw(_widths),
                    dest=draw(_regs))
        elif kind == 1:
            f.cmp(draw(_cmps), draw(_regs), draw(_regs),
                  width=draw(_widths), dest=draw(_regs))
        elif kind == 2:
            f.select(draw(_regs), draw(_regs), draw(_regs),
                     dest=draw(_regs))
        else:
            f.trunc(draw(_regs), width=draw(st.sampled_from((8, 16, 32))),
                    dest=draw(_regs))
    f.output("stdout", "%a", 8)
    f.ret(0)
    return b.build()


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(straightline_modules())
    def test_parse_format_fixpoint(self, module):
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text
