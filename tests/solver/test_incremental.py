"""Assumption-stack incremental solving: alignment, retention, learning.

The stack's contract: solving a query sequence *with* retained state
returns the same verdicts and models as solving every query from
scratch (given the same cache configuration) — the retained unit
assignments, satisfied constraints, and learned conflicts only remove
provably-dead work.  Alignment is the implicit push/pop protocol: facts
survive exactly as long as every constraint their derivation read.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.errors import UnsatError
from repro.solver import AssumptionStack, Retained, Solver, SolverCache
from repro.solver import terms as T
from repro.solver.model import input_var_name


@pytest.fixture(autouse=True)
def fresh_terms():
    with T.term_scope():
        yield


@pytest.fixture
def tel():
    registry = telemetry.Telemetry()
    with telemetry.scoped(registry):
        yield registry


def _v(i):
    return T.var(input_var_name("stdin", i), 8)


def _eq(term, value, width=8):
    return T.cmp("eq", term, T.const(value, width), width)


class TestStackAlignment:
    def test_empty_stack_aligns_to_zero(self):
        stack = AssumptionStack()
        assert stack.align([_eq(_v(0), 1)]) == 0
        assert len(stack) == 0

    def test_extend_then_full_realign_retains_all(self):
        stack = AssumptionStack()
        terms = [_eq(_v(0), 1), _eq(_v(1), 2)]
        stack.extend(terms, {"a": 1}, {"a": 1}, {})
        assert stack.align(terms + [_eq(_v(2), 3)]) == 2
        assert stack.retained().env == {"a": 1}

    def test_divergence_drops_dependent_facts_only(self):
        stack = AssumptionStack()
        terms = [_eq(_v(0), 1), _eq(_v(1), 2), _eq(_v(2), 3)]
        stack.extend(terms, {"early": 7, "late": 9},
                     {"early": 0, "late": 2}, {terms[1]: 1})
        # replace the last constraint: facts depending on index 2 die,
        # everything anchored earlier survives
        assert stack.align(terms[:2] + [_eq(_v(2), 99)]) == 2
        retained = stack.retained()
        assert retained.env == {"early": 7}
        assert terms[1] in retained.satisfied
        assert retained.env_deps == {"early": 0}

    def test_conflicts_pop_with_their_dependency(self):
        stack = AssumptionStack()
        terms = [_eq(_v(0), 1), _eq(_v(1), 2)]
        stack.extend(terms, {}, {}, {},
                     learned={"x": {5: 0, 6: 1}})
        assert stack.retained().excluded == {"x": {5: 0, 6: 1}}
        stack.align([terms[0], _eq(_v(1), 99)])
        # the dep-1 conflict read the replaced constraint; the dep-0
        # conflict did not
        assert stack.retained().excluded == {"x": {5: 0}}
        assert stack.conflicts_dropped == 1

    def test_total_divergence_clears_everything(self):
        stack = AssumptionStack()
        stack.extend([_eq(_v(0), 1)], {"a": 1}, {"a": 0},
                     {}, learned={"x": {5: 0}})
        stack.align([_eq(_v(0), 2)])
        retained = stack.retained()
        assert retained.env == {}
        assert retained.excluded == {}
        assert len(stack) == 0

    def test_deps_clamped_to_list_end(self):
        stack = AssumptionStack()
        terms = [_eq(_v(0), 1)]
        # a missing or overlong dep anchors at the list end, so the
        # fact dies at the first divergence instead of surviving it
        stack.extend(terms, {"a": 1}, {}, {}, learned={"x": {5: 99}})
        assert stack.retained().excluded == {"x": {5: 0}}
        assert stack.retained().env_deps == {"a": 0}


class TestSolverLearning:
    def test_unsat_proof_retains_conflicts(self, tel):
        cache = SolverCache()
        cache.assumptions = AssumptionStack()
        solver = Solver(work_limit=200_000, cache=cache)
        prefix = [T.cmp("ugt", _v(0), T.const(250, 8), 8)]
        # v0 in 251..255, and v0+v1 == 0 with v1 < 250: only v1 in
        # 1..5 could work, each refuted byte-by-byte -> conflicts learned
        with pytest.raises(UnsatError):
            solver.solve(prefix + [
                _eq(T.binop("add", _v(0), _v(1), 8), 0),
                T.cmp("ugt", _v(1), T.const(250, 8), 8)])
        assert cache.assumptions.conflicts_learned > 0
        counters = tel.snapshot()["counters"]
        assert counters["solver.incremental.conflicts_learned"] > 0

    def test_sibling_query_skips_learned_candidates(self, tel):
        cache = SolverCache()
        cache.assumptions = AssumptionStack()
        solver = Solver(work_limit=200_000, cache=cache)
        prefix = [T.cmp("ugt", _v(0), T.const(250, 8), 8)]
        suffix = [_eq(T.binop("add", _v(0), _v(1), 8), 0),
                  T.cmp("ugt", _v(1), T.const(250, 8), 8)]
        with pytest.raises(UnsatError):
            solver.solve(prefix + suffix)
        # sibling: same prefix, different (still unsat) tail — the
        # retained prefix conflicts prune its search
        with pytest.raises(UnsatError):
            solver.solve(prefix + suffix[:1] +
                         [T.cmp("ugt", _v(1), T.const(251, 8), 8)])
        counters = tel.snapshot()["counters"]
        assert counters.get("solver.incremental.skipped_candidates", 0) > 0
        assert counters["solver.incremental.queries"] == 2


# -- the equivalence property -------------------------------------------

_byte = st.integers(0, 255)


@st.composite
def query_sequences(draw):
    """Short sequences of sibling queries over a shared prefix."""
    v0, v1 = _v(0), _v(1)
    prefix = [T.cmp(draw(st.sampled_from(["ugt", "ult", "ne"])),
                    v0, T.const(draw(_byte), 8), 8)]
    queries = []
    for _ in range(draw(st.integers(1, 4))):
        tail = []
        for _ in range(draw(st.integers(0, 2))):
            op = draw(st.sampled_from(["eq", "ne", "ult", "ugt"]))
            shape = draw(st.integers(0, 1))
            lhs = (v1 if shape == 0
                   else T.binop(draw(st.sampled_from(["add", "xor"])),
                                v0, v1, 8))
            tail.append(T.cmp(op, lhs, T.const(draw(_byte), 8), 8))
        queries.append(prefix + tail)
    return queries


def _run(queries, incremental):
    cache = SolverCache()
    if incremental:
        cache.assumptions = AssumptionStack()
    # two byte-wide vars are exhaustively searchable, so a generous
    # limit keeps both legs definitive — learning only shifts *timeout*
    # boundaries, which this property deliberately keeps unreachable
    solver = Solver(work_limit=20_000_000, cache=cache)
    out = []
    for q in queries:
        try:
            out.append(("sat", solver.solve(q).assignment))
        except UnsatError:
            out.append(("unsat", None))
    return out


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(query_sequences())
    def test_incremental_matches_scratch(self, queries):
        T.clear_term_cache()
        assert _run(queries, True) == _run(queries, False)

    def test_retained_seed_is_isolated_per_search(self):
        # the Retained view aliases the stack's live conflict table;
        # searches must treat it as read-only
        stack = AssumptionStack()
        stack.extend([_eq(_v(0), 1)], {}, {}, {}, learned={"x": {5: 0}})
        retained = stack.retained()
        assert isinstance(retained, Retained)
        before = {k: dict(v) for k, v in stack.excluded.items()}
        cache = SolverCache()
        cache.assumptions = stack
        solver = Solver(work_limit=50_000, cache=cache)
        solver.solve([_eq(_v(0), 1), _eq(_v(1), 7)])
        assert {k: dict(v) for k, v in stack.excluded.items()
                if k in before} == before
