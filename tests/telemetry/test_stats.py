"""The stats folder: JSONL events -> per-iteration breakdown."""

import pytest

from repro.telemetry.stats import (OVERHEAD_SOURCES, final_snapshot,
                                   iteration_rows, overhead_attribution,
                                   render_stats)


def hist(count, total, **extra):
    h = {"count": count, "sum": total, "mean": total / max(count, 1),
         "min": 0.0, "max": total, "p50": 0.0, "p90": 0.0, "p99": 0.0}
    h.update(extra)
    return h


def span(name, dur, **attrs):
    e = {"type": "span", "name": name, "dur_s": dur}
    if attrs:
        e["attrs"] = attrs
    return e


def iteration_end(n, **extra):
    attrs = {"iteration": n, "status": "stalled", "instrs": 100,
             "trace_bytes": 64, "solver_calls": 3, "modelled_s": 1.5,
             "recorded_bytes": 12}
    attrs.update(extra)
    return {"type": "event", "name": "reconstruct.iteration",
            "attrs": attrs}


class TestIterationRows:
    def test_phase_spans_grouped_by_iteration_attr(self):
        events = [
            span("reconstruct.production", 0.5, iteration=1),
            span("reconstruct.symex", 2.0, iteration=1),
            iteration_end(1),
            span("reconstruct.production", 0.25, iteration=2),
            span("reconstruct.symex", 1.0, iteration=2),
            iteration_end(2, status="completed", recorded_bytes=0),
        ]
        rows = iteration_rows(events)
        assert len(rows) == 2
        assert rows[0]["production_s"] == 0.5
        assert rows[0]["symex_s"] == 2.0
        assert rows[0]["status"] == "stalled"
        assert rows[1]["status"] == "completed"
        assert rows[1]["recorded_bytes"] == 0

    def test_nested_decode_attributed_to_enclosing_iteration(self):
        events = [
            span("trace.decode", 0.1),
            span("trace.decode", 0.2),
            iteration_end(1),
            span("trace.decode", 0.4),
            iteration_end(2),
        ]
        rows = iteration_rows(events)
        assert rows[0]["decode_s"] == pytest.approx(0.3)
        assert rows[1]["decode_s"] == pytest.approx(0.4)

    def test_unrelated_events_ignored(self):
        events = [
            {"type": "event", "name": "production.ring_wrap",
             "attrs": {"bytes": 9}},
            span("solver.query", 0.01),
            iteration_end(1),
        ]
        rows = iteration_rows(events)
        assert len(rows) == 1

    def test_empty_stream(self):
        assert iteration_rows([]) == []
        assert "no per-iteration events" in render_stats([])


class TestFinalSnapshot:
    def test_last_snapshot_wins(self):
        events = [
            {"type": "snapshot", "metrics": {"counters": {"a": 1}}},
            {"type": "snapshot", "metrics": {"counters": {"a": 2}}},
        ]
        assert final_snapshot(events)["counters"]["a"] == 2

    def test_none_without_snapshot(self):
        assert final_snapshot([iteration_end(1)]) is None


class TestRenderStats:
    def test_renders_iterations_and_counters(self):
        events = [
            span("reconstruct.symex", 1.25, iteration=1),
            iteration_end(1),
            {"type": "snapshot",
             "metrics": {"counters": {"production.runs": 4},
                         "histograms": {
                             "span.symex.run": {
                                 "count": 1, "sum": 1.25, "mean": 1.25,
                                 "min": 1.25, "max": 1.25, "p50": 1.25,
                                 "p90": 1.25, "p99": 1.25}}}},
        ]
        text = render_stats(events)
        assert "Per-iteration cost breakdown" in text
        assert "production.runs" in text
        assert "symex.run" in text

    def test_solver_cache_hit_rate_line(self):
        events = [
            iteration_end(1),
            {"type": "snapshot",
             "metrics": {"counters": {"solver.cache.hits": 3,
                                      "solver.cache.misses": 1},
                         "histograms": {}}},
        ]
        text = render_stats(events)
        assert "solver cache: 3 hits / 1 misses (75.0% hit rate" in text

    def test_hit_rate_folds_model_probe_tier(self):
        # a successful probe is a miss + model_probe_hits: the rendered
        # rate counts it as answered-by-cache (3+1 of 3+2)
        events = [
            iteration_end(1),
            {"type": "snapshot",
             "metrics": {"counters": {
                 "solver.cache.hits": 3,
                 "solver.cache.misses": 2,
                 "solver.cache.model_probe_hits": 1,
                 "solver.cache.subsumption_hits": 2,
                 "solver.cache.disk_hits": 1},
                 "histograms": {}}},
        ]
        text = render_stats(events)
        assert "(80.0% hit rate incl. 1 model-probe hits)" in text
        assert "2 subsumption hits, 1 disk hits" in text

    def test_metric_histograms_rendered(self):
        # non-span histograms (e.g. the per-shard subspace sizes) get
        # their own table; span histograms keep theirs
        events = [
            iteration_end(1),
            {"type": "snapshot",
             "metrics": {"counters": {},
                         "histograms": {
                             "parallel.shard_subspace_attempts": {
                                 "count": 4, "sum": 20.0, "mean": 5.0,
                                 "min": 1.0, "max": 14.0, "p50": 2.0,
                                 "p90": 14.0, "p99": 14.0}}}},
        ]
        text = render_stats(events)
        assert "Metric histograms" in text
        assert "parallel.shard_subspace_attempts" in text

    def test_no_cache_line_without_cache_counters(self):
        events = [
            iteration_end(1),
            {"type": "snapshot",
             "metrics": {"counters": {"production.runs": 4},
                         "histograms": {}}},
        ]
        assert "solver cache" not in render_stats(events)


class TestOverheadAttribution:
    def test_stable_schema_with_zero_fills(self):
        out = overhead_attribution(None)
        assert set(out) == {name for _, name in OVERHEAD_SOURCES}
        for entry in out.values():
            assert entry["count"] == 0
            assert entry["total_s"] == 0.0 and entry["mean_s"] == 0.0

    def test_totals_and_means_from_histograms(self):
        metrics = {"histograms": {
            "parallel.queue_wait_seconds": hist(4, 0.2),
            "parallel.worker_idle_seconds": hist(2, 1.0),
        }}
        out = overhead_attribution(metrics)
        wait = out["parallel.queue_wait_seconds"]
        assert wait["label"] == "queue wait"
        assert wait["count"] == 4
        assert wait["total_s"] == pytest.approx(0.2)
        assert wait["mean_s"] == pytest.approx(0.05)
        assert out["parallel.worker_idle_seconds"]["total_s"] == \
            pytest.approx(1.0)

    def test_rendered_table_when_any_source_recorded(self):
        events = [
            iteration_end(1),
            {"type": "snapshot",
             "metrics": {"counters": {},
                         "histograms": {
                             "parallel.steal_latency_seconds":
                                 hist(3, 0.03),
                             "span.parallel.pool_spinup": hist(1, 0.01),
                         }}},
        ]
        text = render_stats(events)
        assert "Overhead attribution" in text
        assert "steal latency" in text and "pool spin-up" in text

    def test_overhead_histograms_kept_out_of_metric_table(self):
        events = [
            iteration_end(1),
            {"type": "snapshot",
             "metrics": {"counters": {},
                         "histograms": {
                             "parallel.queue_wait_seconds": hist(2, 0.1),
                         }}},
        ]
        text = render_stats(events)
        assert "Metric histograms" not in text
        assert "Overhead attribution" in text

    def test_no_table_without_recorded_overhead(self):
        events = [
            iteration_end(1),
            {"type": "snapshot",
             "metrics": {"counters": {"production.runs": 1},
                         "histograms": {}}},
        ]
        assert "Overhead attribution" not in render_stats(events)
