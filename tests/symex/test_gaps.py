"""Gap-tolerant shepherding: recovering lost TNT bits (§4)."""

from types import SimpleNamespace

import pytest

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.solver.cache import SolverCache
from repro.symex import gaps
from repro.symex.gaps import (SearchCancelled, _search_gap_decisions,
                              replay_with_gap_recovery)
from repro.trace.decoder import decode
from repro.trace.degrade import DEFAULT_LOSS, degrade_trace, gap_count
from repro.trace.encoder import PTEncoder
from repro.trace.packets import GapEvent, TntEvent
from repro.trace.ringbuffer import RingBuffer
from repro.workloads import get_workload


def traced_run(module, env):
    encoder = PTEncoder(RingBuffer())
    result = Interpreter(module, env, tracer=encoder).run()
    return result, decode(encoder.buffer)


class TestDegrade:
    def test_loss_rate_roughly_respected(self, table_module):
        run, trace = traced_run(table_module,
                                Environment({"stdin": bytes([5, 5])}))
        degraded = degrade_trace(trace, loss=1.0)
        assert gap_count(degraded) == trace.branch_count

    def test_zero_loss_identity(self, table_module):
        _, trace = traced_run(table_module,
                              Environment({"stdin": bytes([5, 5])}))
        degraded = degrade_trace(trace, loss=0.0)
        assert gap_count(degraded) == 0

    def test_seeded_determinism(self, abort_module):
        _, trace = traced_run(abort_module,
                              Environment({"stdin": b"\xc8"}))
        a = degrade_trace(trace, loss=0.5, seed=3)
        b = degrade_trace(trace, loss=0.5, seed=3)
        assert gap_count(a) == gap_count(b)

    def test_non_tnt_events_preserved(self, abort_module):
        _, trace = traced_run(abort_module,
                              Environment({"stdin": b"\xc8"}))
        degraded = degrade_trace(trace, loss=1.0)
        assert degraded.chunks[0].n_instrs == trace.chunks[0].n_instrs


class TestGapRecovery:
    def test_fully_degraded_single_branch(self, abort_module):
        run, trace = traced_run(abort_module,
                                Environment({"stdin": b"\xc8"}))
        degraded = degrade_trace(trace, loss=1.0)
        result = replay_with_gap_recovery(abort_module, degraded,
                                          run.failure)
        assert result.completed
        # the generated input still triggers the failure
        rerun = Interpreter(abort_module,
                            Environment(result.model.streams())).run()
        assert rerun.failure is not None

    def test_symbolic_gaps_searched(self, table_module):
        run, trace = traced_run(table_module,
                                Environment({"stdin": bytes([5, 5])}))
        degraded = degrade_trace(trace, loss=1.0)
        result = replay_with_gap_recovery(table_module, degraded,
                                          run.failure)
        assert result.completed
        stdin = result.model.streams()["stdin"]
        assert stdin[0] == stdin[1]  # the aliasing relation survives

    def test_paper_loss_rate_on_workloads(self):
        for name in ("libpng-2004-0597", "bash-108885",
                     "objdump-2018-6323"):
            workload = get_workload(name)
            module = workload.fresh_module()
            run, trace = traced_run(module, workload.failing_env(1))
            degraded = degrade_trace(trace, loss=DEFAULT_LOSS, seed=7)
            result = replay_with_gap_recovery(
                module, degraded, run.failure,
                work_limit=workload.work_limit * 20)
            assert result.status in ("completed", "stalled"), name

    def test_wrong_defaults_backtracked(self, abort_module):
        # the benign path: default 'taken' is wrong for this branch
        run, trace = traced_run(abort_module,
                                Environment({"stdin": b"\x01"}))
        assert run.failure is None
        degraded = degrade_trace(trace, loss=1.0)
        result = replay_with_gap_recovery(abort_module, degraded, None)
        assert result.completed
        assert result.gap_attempts >= 1

    def test_intact_trace_single_attempt(self, table_module):
        run, trace = traced_run(table_module,
                                Environment({"stdin": bytes([5, 5])}))
        result = replay_with_gap_recovery(table_module, trace,
                                          run.failure)
        assert result.completed and result.gap_attempts == 1

    def test_zero_max_attempts_rejected(self, abort_module):
        run, trace = traced_run(abort_module,
                                Environment({"stdin": b"\xc8"}))
        with pytest.raises(ValueError, match="max_attempts"):
            replay_with_gap_recovery(abort_module, trace, run.failure,
                                     max_attempts=0)
        with pytest.raises(ValueError, match="max_attempts"):
            replay_with_gap_recovery(abort_module, trace, run.failure,
                                     max_attempts=-3)


class _DivergingEngine:
    """Stub engine: always diverges after consuming ``depth`` gap bits.

    Records every decision vector it was launched with, so tests can pin
    the exact DFS order and the locked-prefix confinement.
    """

    launches = []
    depth = 2

    def __init__(self, module, trace, failure, gap_decisions=(),
                 solver_cache=None, **kwargs):
        self.decisions = list(gap_decisions)
        type(self).launches.append(list(gap_decisions))

    def run(self):
        bits = (self.decisions + [True] * type(self).depth)[
            :type(self).depth]
        return SimpleNamespace(status="diverged", gap_bits=bits,
                               gap_attempts=1,
                               divergence_reason="diverged at chunk 0",
                               diverged_chunk=0, model=None)


@pytest.fixture
def diverging_engine(monkeypatch):
    _DivergingEngine.launches = []
    _DivergingEngine.depth = 2
    monkeypatch.setattr(gaps, "ShepherdedSymex", _DivergingEngine)
    return _DivergingEngine


class TestSearchAccounting:
    """The explicit-attempt fix: the reported count is the number of
    replays actually run, not a leaked loop variable."""

    def test_exhausted_space_counts_all_attempts(self, diverging_engine):
        result = _search_gap_decisions("m", "t", None, 512,
                                       SolverCache(), {})
        # depth-2 space: TT, TF, FT, FF — four replays, then give up
        assert result.gap_attempts == 4
        assert result.divergence_reason.endswith(
            "(after 4 gap assignments)")
        assert diverging_engine.launches == \
            [[], [True, False], [False], [False, False]]

    def test_attempt_cap_respected_in_suffix(self, diverging_engine):
        result = _search_gap_decisions("m", "t", None, 3,
                                       SolverCache(), {})
        assert result.gap_attempts == 3
        assert result.divergence_reason.endswith(
            "(after 3 gap assignments)")

    def test_zero_attempts_raises_cleanly(self, diverging_engine):
        with pytest.raises(ValueError, match="max_attempts"):
            _search_gap_decisions("m", "t", None, 0, SolverCache(), {})


class TestLockedPrefix:
    """Shard confinement: backtracking never crosses the locked prefix."""

    def test_subspace_fully_explored(self, diverging_engine):
        diverging_engine.depth = 3
        result = _search_gap_decisions(
            "m", "t", None, 512, SolverCache(), {},
            initial_decisions=[True, False], locked_prefix=2)
        # only the third bit is searchable: two leaves
        assert result.gap_attempts == 2
        assert diverging_engine.launches == \
            [[True, False], [True, False, False]]
        for decisions in diverging_engine.launches:
            assert decisions[:2] == [True, False]

    def test_divergence_inside_prefix_exhausts(self, diverging_engine):
        diverging_engine.depth = 1  # diverges before the prefix ends
        result = _search_gap_decisions(
            "m", "t", None, 512, SolverCache(), {},
            initial_decisions=[True, False], locked_prefix=2)
        assert result.gap_attempts == 1
        assert diverging_engine.launches == [[True, False]]

    def test_unlocked_matches_plain_search(self, diverging_engine):
        plain = _search_gap_decisions("m", "t", None, 512,
                                      SolverCache(), {})
        diverging_engine.launches = []
        seeded = _search_gap_decisions("m", "t", None, 512,
                                       SolverCache(), {},
                                       initial_decisions=[],
                                       locked_prefix=0)
        assert seeded.gap_attempts == plain.gap_attempts


class TestSearchControl:
    """The work-stealing checkpoint hook (driven by repro.parallel)."""

    def test_checkpoint_runs_before_every_replay(self, diverging_engine):
        calls = []

        class Recorder:
            def checkpoint(self, decisions, locked_prefix, attempts):
                calls.append((list(decisions), locked_prefix, attempts))
                return locked_prefix

        result = _search_gap_decisions("m", "t", None, 512, SolverCache(),
                                       {}, control=Recorder())
        assert len(calls) == result.gap_attempts == 4
        # attempts counts *completed* replays at each checkpoint
        assert [c[2] for c in calls] == [0, 1, 2, 3]

    def test_cancel_stops_the_search(self, diverging_engine):
        class CancelSecond:
            def checkpoint(self, decisions, locked_prefix, attempts):
                if attempts >= 1:
                    raise SearchCancelled(attempts)
                return locked_prefix

        with pytest.raises(SearchCancelled) as err:
            _search_gap_decisions("m", "t", None, 512, SolverCache(), {},
                                  control=CancelSecond())
        assert err.value.attempts == 1
        assert len(diverging_engine.launches) == 1

    def test_extended_locked_prefix_confines_backtracking(
            self, diverging_engine):
        # a donation (checkpoint returning a longer locked prefix) keeps
        # the victim out of the donated half for the rest of the search
        class DonateFirstBit:
            def checkpoint(self, decisions, locked_prefix, attempts):
                return max(locked_prefix, 1)

        result = _search_gap_decisions("m", "t", None, 512, SolverCache(),
                                       {}, control=DonateFirstBit())
        # bit 0 locked at its default True: only the second bit is
        # searched, and the donated [False, *] half is never entered
        assert result.gap_attempts == 2
        assert diverging_engine.launches == [[], [True, False]]
