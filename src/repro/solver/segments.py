"""Segmented solver-cache storage: seal, compact, merge, verify.

The disk tier (:mod:`repro.solver.diskcache`) started life as one
append-only JSONL file.  That is the right *write* format — a single
locked append is crash-safe and cheap — but it grows without bound and
two machines' files cannot be combined.  This module matures the layout
into a **segmented store**:

* an **active** append segment, written exactly like the old single
  file (same entry schema, same torn-tail tolerance);
* zero or more **sealed** segments — immutable files named
  ``<stem>.00001.jsonl`` — created by *sealing* the active segment when
  it crosses a size cap;
* a tiny **manifest** (``<stem>.manifest.json``) naming the active
  segment and the sealed ones in replay order.

Sealing never copies or renames data: it is a single atomic manifest
swap (write-temp + ``os.replace``) that re-labels the current active
file as sealed and points writers at a fresh name.  A crash therefore
leaves either the old or the new manifest, never a torn state.

**Compaction** rewrites the sealed segments into one, dropping

1. *duplicate keys* — only the last writer of a verdict or
   value-enumeration key is kept (replay semantics: later lines win);
2. *tombstoned entries* — a ``{"k": [...], "x": true}`` line erases
   every earlier entry for its key, and, because compaction always
   covers the full sealed prefix, the tombstone itself;
3. *subsumed infeasible sets* — an infeasible set that is a strict
   superset of another retained infeasible set answers no query the
   subset doesn't (subset-infeasible subsumption), so it is dropped.

Feasible entries are only deduplicated, never subsumption-dropped: an
exact feasible hit may carry no model while a superset's entry does,
and compaction must not change any ``(feasible, model)`` lookup result.
The compacted file is installed atomically — temp write, rename, then
one manifest swap — under the store's exclusive lock, so concurrent
readers either see the old segment list or the new one, both of which
answer every previously-answerable query identically.  Old segment
files are unlinked only after the swap (readers holding them open keep
their file descriptors; POSIX keeps the data alive).

**Merge** unions two independent machines' stores by importing both
stores' lines as sealed segments of a new store — first ``a``'s, then
``b``'s, so replay gives ``b`` last-writer-wins on the only entries
that can conflict (value-enumeration indexes truncated at different
points; feasibility verdicts never conflict by construction) — and then
compacting.  ``merge_caches(a, b, out, compact=False)`` keeps the raw
union, which is what the compaction benchmark measures shrinkage on.

Crash-safety is fault-injected in the tests: :func:`set_fault_hook`
raises at the *temp-written*, *renamed*, and *manifest-swapped*
boundaries, and the suite asserts a fresh reader and a live concurrent
handle answer every pre-compaction query identically after each kind of
death.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import pathlib
import re
import time
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

try:
    import fcntl
except ImportError:  # non-POSIX: single-line appends are near-atomic
    fcntl = None

logger = logging.getLogger(__name__)

__all__ = [
    "DEFAULT_SEAL_BYTES",
    "AUTO_COMPACT_MIN_SEGMENTS",
    "Manifest",
    "SegmentLayout",
    "FileLock",
    "set_fault_hook",
    "seal_locked",
    "compact_locked",
    "compact_store",
    "merge_caches",
    "verify_store",
    "store_stats",
]

#: default active-segment size cap; crossing it seals the segment
DEFAULT_SEAL_BYTES = 1 << 20
#: auto-compaction (from ``DiskSolverCache.store``) fires once this
#: many sealed segments exist — i.e. on every seal after the first
AUTO_COMPACT_MIN_SEGMENTS = 2

MANIFEST_VERSION = 1

#: sealed-segment (and their temp) file names: ``<stem>.00001.jsonl``
_SEGMENT_RE = re.compile(r"\.\d{5}\.jsonl(\.tmp)?$")


# ----------------------------------------------------------------------
# fault injection (crash-safety tests)

_fault_hook: Optional[Callable[[str], None]] = None


def set_fault_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Install a hook called at each install boundary (tests only).

    The hook receives ``"compact.temp-written"``, ``"compact.renamed"``,
    or ``"compact.manifest-swapped"`` and may raise to simulate the
    compactor dying at that exact point.
    """
    global _fault_hook
    _fault_hook = hook


def _fault(point: str) -> None:
    if _fault_hook is not None:
        _fault_hook(point)


# ----------------------------------------------------------------------
# layout & manifest

class Manifest:
    """The store's tiny source of truth: active + sealed segment names.

    ``generation`` increments on every seal/compaction/merge-install so
    readers can detect *any* relabeling with one ``stat`` and rebuild;
    ``next_segment`` is the monotonically-increasing name allocator
    (sealed segments and post-seal active files share it, so a name is
    never reused even across compactions).
    """

    __slots__ = ("generation", "next_segment", "active", "segments")

    def __init__(self, generation: int = 0, next_segment: int = 1,
                 active: str = "", segments: Optional[List[str]] = None):
        self.generation = generation
        self.next_segment = next_segment
        self.active = active
        self.segments = list(segments or ())

    def to_dict(self) -> Dict:
        return {"version": MANIFEST_VERSION,
                "generation": self.generation,
                "next_segment": self.next_segment,
                "active": self.active,
                "segments": list(self.segments)}

    def __repr__(self):
        return (f"Manifest(gen={self.generation}, "
                f"active={self.active!r}, segments={self.segments!r})")


class SegmentLayout:
    """File naming for one store: directory, stem, manifest, lock.

    ``path`` may be a directory (the conventional ``--cache-dir``) or a
    ``*.jsonl`` file path (then the stem is that file's); both map onto
    the same ``(directory, stem)`` pair every other name derives from.
    """

    def __init__(self, path: Union[str, pathlib.Path]):
        path = pathlib.Path(path)
        if path.suffix == ".jsonl":
            self.directory = path.parent
            self.stem = path.stem
        else:
            self.directory = path
            self.stem = "solver-cache"

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.directory / f"{self.stem}.manifest.json"

    @property
    def lock_path(self) -> pathlib.Path:
        return self.directory / f"{self.stem}.lock"

    @property
    def default_active(self) -> str:
        """The pre-manifest (legacy single-file) active segment name."""
        return f"{self.stem}.jsonl"

    def segment_name(self, number: int) -> str:
        return f"{self.stem}.{number:05d}.jsonl"

    def file(self, name: str) -> pathlib.Path:
        return self.directory / name

    def manifest_stat(self) -> Optional[Tuple[int, int, int]]:
        """A cheap change signature: the swap's rename always changes
        the inode, so ``(ino, size, mtime_ns)`` catches every install."""
        try:
            st = os.stat(self.manifest_path)
        except OSError:
            return None
        return (st.st_ino, st.st_size, st.st_mtime_ns)

    def load_manifest(self) -> Manifest:
        """The current manifest, or the legacy/fresh-store default."""
        try:
            raw = self.manifest_path.read_text(encoding="utf-8")
        except OSError:
            return Manifest(active=self.default_active)
        try:
            data = json.loads(raw)
            manifest = Manifest(
                generation=int(data["generation"]),
                next_segment=int(data["next_segment"]),
                active=str(data["active"]),
                segments=[str(s) for s in data["segments"]])
        except (KeyError, TypeError, ValueError) as exc:
            # a corrupt manifest must not brick the cache (it is a
            # cache): fall back to an empty view; `verify` reports it
            logger.warning("corrupt cache manifest %s (%s); treating "
                           "store as empty", self.manifest_path, exc)
            return Manifest(active=self.default_active)
        return manifest

    def write_manifest(self, manifest: Manifest) -> None:
        """Atomic install: write-temp, fsync, rename over the old."""
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest.to_dict(), fh, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)

    def orphan_files(self, manifest: Manifest) -> List[pathlib.Path]:
        """Segment-pattern files no manifest entry references.

        Orphans are leftovers of a compactor/merger that died between
        rename and manifest swap — readers never open them, so they are
        garbage, reclaimed under the exclusive lock on the next
        compaction.
        """
        referenced = set(manifest.segments) | {manifest.active}
        orphans = []
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        for name in names:
            if not name.startswith(self.stem + "."):
                continue
            if name in referenced:
                continue
            # the legacy single-file name is a segment too once sealed,
            # so an interrupted compaction can orphan it like any other
            if _SEGMENT_RE.search(name) or name == self.default_active:
                orphans.append(self.directory / name)
        return orphans


class FileLock:
    """Advisory flock on a dedicated lock file.

    The lock lives on its own file (not the data file) so its identity
    survives seals and compactions relabeling the data files around it.
    A shared lock guards reads of manifest + segments; every mutation —
    append, seal, compact-install, merge-install — takes it exclusive.
    """

    def __init__(self, path: pathlib.Path):
        self.path = path
        self._fh = None
        self._depth = 0

    @contextlib.contextmanager
    def acquire(self, exclusive: bool):
        if self._depth:  # re-entrant within one handle (already held)
            self._depth += 1
            try:
                yield
            finally:
                self._depth -= 1
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.path, "a+")
        if fcntl is not None:
            waited = time.perf_counter()
            fcntl.flock(fh.fileno(),
                        fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            from .. import telemetry
            telemetry.histogram(
                "solver.diskcache.lock_wait_seconds").record(
                    time.perf_counter() - waited)
        self._fh = fh
        self._depth = 1
        try:
            yield
        finally:
            self._depth = 0
            self._fh = None
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            fh.close()


# ----------------------------------------------------------------------
# entry plumbing

def iter_lines(path: pathlib.Path) -> Iterator[str]:
    """Complete (newline-terminated) lines of one segment file.

    A torn tail — possible in a sealed segment when the active file was
    sealed while a crashed writer's fragment sat at its end — is
    silently dropped, exactly as the live reader skips it.
    """
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return
    with fh:
        for line in fh:
            if not line.endswith("\n"):
                return
            yield line


def parse_entry(line: str) -> Optional[Dict]:
    """The entry a line carries, or ``None`` for corrupt/empty lines."""
    try:
        entry = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(entry, dict) or not entry.get("k"):
        return None
    return entry


def entry_key(entry: Dict):
    """The logical last-writer-wins key of one parsed entry.

    ``("f", digests)`` for verdicts, ``("v", digests, term, limit)``
    for value enumerations, ``("x", digests)`` for tombstones — or
    ``None`` when the entry is malformed.
    """
    digests = frozenset(str(d) for d in entry.get("k", ()))
    if not digests:
        return None
    if entry.get("x"):
        return ("x", digests)
    if "t" in entry:
        try:
            return ("v", digests, str(entry["t"]), int(entry["l"]))
        except (KeyError, TypeError, ValueError):
            return None
    return ("f", digests)


class CompactionStats:
    """What one compaction read, dropped, and kept."""

    __slots__ = ("entries_in", "entries_out", "dropped_duplicates",
                 "dropped_tombstoned", "dropped_subsumed",
                 "dropped_corrupt", "bytes_in", "bytes_out", "seconds")

    def __init__(self):
        self.entries_in = 0
        self.entries_out = 0
        self.dropped_duplicates = 0
        self.dropped_tombstoned = 0
        self.dropped_subsumed = 0
        self.dropped_corrupt = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.seconds = 0.0

    @property
    def entries_dropped(self) -> int:
        return self.entries_in - self.entries_out

    def to_dict(self) -> Dict:
        return {name: getattr(self, name) for name in self.__slots__}


def compact_lines(lines: List[str],
                  stats: Optional[CompactionStats] = None
                  ) -> Tuple[List[str], CompactionStats]:
    """Apply the drop rules to raw lines in replay order.

    Pure function — the unit the property tests drive.  Returns the
    retained lines (original relative order, byte-identical content)
    and the accounting.
    """
    stats = stats or CompactionStats()
    entries: List[Optional[Dict]] = []
    last_writer: Dict[Tuple, int] = {}
    for position, line in enumerate(lines):
        entry = parse_entry(line)
        key = entry_key(entry) if entry is not None else None
        entries.append(entry if key is not None else None)
        stats.entries_in += 1
        stats.bytes_in += len(line.encode("utf-8"))
        if key is None:
            stats.dropped_corrupt += 1
            continue
        if key[0] == "x":
            # a tombstone erases every earlier entry for its key —
            # the verdict and every enumeration — and, since the
            # compacted prefix is the *whole* history before the
            # active segment, carries no further information itself
            cancelled = [k for k in last_writer
                         if k[1] == key[1] and k[0] in ("f", "v")]
            for other in cancelled:
                last_writer.pop(other)
            stats.dropped_tombstoned += 1 + len(cancelled)
            continue
        if key in last_writer:
            stats.dropped_duplicates += 1  # the older line loses
        last_writer[key] = position
    retain = set(last_writer.values())

    # subsumed-infeasible pass: drop retained infeasible sets that are
    # strict supersets of another retained infeasible set (the subset
    # answers every query the superset could, with the same
    # (False, None) result)
    infeasible: List[Tuple[frozenset, int]] = []
    for key, position in last_writer.items():
        if key[0] == "f" and not entries[position].get("f"):
            infeasible.append((key[1], position))
    minimal: List[frozenset] = []
    for digests, position in sorted(infeasible,
                                    key=lambda pair: len(pair[0])):
        if any(kept < digests for kept in minimal):
            retain.discard(position)
            stats.dropped_subsumed += 1
        else:
            minimal.append(digests)

    retained_lines: List[str] = []
    for position, line in enumerate(lines):
        if position not in retain:
            continue
        retained_lines.append(line)
        stats.entries_out += 1
        stats.bytes_out += len(line.encode("utf-8"))
    return retained_lines, stats


# ----------------------------------------------------------------------
# seal / compact / merge (caller holds the exclusive lock for *_locked)

def seal_locked(layout: SegmentLayout, manifest: Manifest) -> Manifest:
    """Re-label the active segment as sealed; point at a fresh name.

    No data moves: one atomic manifest swap.  A missing or empty active
    file seals nothing and returns the manifest unchanged.
    """
    active = layout.file(manifest.active or layout.default_active)
    try:
        if os.stat(active).st_size == 0:
            return manifest
    except OSError:
        return manifest
    sealed = Manifest(
        generation=manifest.generation + 1,
        next_segment=manifest.next_segment + 1,
        active=layout.segment_name(manifest.next_segment),
        segments=manifest.segments + [manifest.active
                                      or layout.default_active])
    layout.write_manifest(sealed)
    return sealed


def compact_locked(layout: SegmentLayout, manifest: Manifest
                   ) -> Tuple[Manifest, CompactionStats]:
    """Rewrite every sealed segment into one, installed atomically.

    Protocol: write the compacted lines to ``<new>.jsonl.tmp``, fsync,
    rename to ``<new>.jsonl`` (still unreferenced — invisible to
    readers), swap the manifest, then unlink the replaced segments and
    any orphans.  A crash at any boundary leaves a store that answers
    every query identically: either the old manifest (temp/orphan files
    are never opened) or the new one (the compacted segment is
    complete before the swap).
    """
    started = time.perf_counter()
    stats = CompactionStats()
    if not manifest.segments:
        return manifest, stats

    lines: List[str] = []
    for name in manifest.segments:
        lines.extend(iter_lines(layout.file(name)))
    retained, stats = compact_lines(lines, stats)

    new_segments: List[str] = []
    next_segment = manifest.next_segment
    if retained:
        new_name = layout.segment_name(next_segment)
        next_segment += 1
        tmp = layout.file(new_name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.writelines(retained)
            fh.flush()
            os.fsync(fh.fileno())
        _fault("compact.temp-written")
        os.replace(tmp, layout.file(new_name))
        _fault("compact.renamed")
        new_segments = [new_name]

    compacted = Manifest(generation=manifest.generation + 1,
                         next_segment=next_segment,
                         active=manifest.active,
                         segments=new_segments)
    layout.write_manifest(compacted)
    _fault("compact.manifest-swapped")

    for name in manifest.segments:
        try:
            os.unlink(layout.file(name))
        except OSError:
            pass
    for orphan in layout.orphan_files(compacted):
        try:
            os.unlink(orphan)
        except OSError:
            pass

    stats.seconds = time.perf_counter() - started
    from .. import telemetry
    telemetry.count("solver.diskcache.compaction.entries_in",
                    stats.entries_in)
    telemetry.count("solver.diskcache.compaction.entries_dropped",
                    stats.entries_dropped)
    telemetry.histogram("solver.diskcache.compaction.seconds").record(
        stats.seconds)
    return compacted, stats


def compact_store(path: Union[str, pathlib.Path], *,
                  seal_first: bool = True
                  ) -> Tuple[Manifest, CompactionStats]:
    """The ``repro cache compact`` entry: seal, then compact, locked.

    ``seal_first`` folds the current active segment into the compaction
    (the CLI wants everything compacted; auto-compaction from
    ``store()`` seals implicitly by having just crossed the cap).
    """
    layout = SegmentLayout(path)
    lock = FileLock(layout.lock_path)
    with lock.acquire(exclusive=True):
        manifest = layout.load_manifest()
        if seal_first:
            manifest = seal_locked(layout, manifest)
        return compact_locked(layout, manifest)


def merge_caches(a: Union[str, pathlib.Path],
                 b: Union[str, pathlib.Path],
                 out: Union[str, pathlib.Path], *,
                 compact: bool = True) -> Dict:
    """Union two independent stores into a fresh one at ``out``.

    Every entry either source holds lands in ``out``; on the one entry
    kind that can conflict — value enumerations for the same
    ``(key, term, limit)`` index truncated differently on each machine
    — ``b`` wins (its segment replays later).  Feasibility verdicts
    never conflict by construction (only proven verdicts are stored),
    so their duplicates are pure redundancy for the compactor.

    ``out`` must be empty (a fresh directory or one with no store);
    merging into a live store would silently reorder its history.
    """
    layout_out = SegmentLayout(out)
    sources = [SegmentLayout(a), SegmentLayout(b)]
    if layout_out.directory.resolve() in (
            source.directory.resolve() for source in sources):
        raise ValueError("merge output must not be a source store")

    stats = {"entries_a": 0, "entries_b": 0, "entries_out": 0,
             "segments_out": 0, "compaction": None}
    lock = FileLock(layout_out.lock_path)
    with lock.acquire(exclusive=True):
        manifest = layout_out.load_manifest()
        if (manifest.segments
                or os.path.exists(layout_out.file(manifest.active
                                                  or layout_out
                                                  .default_active))):
            raise ValueError(f"merge output {layout_out.directory} "
                             "already holds a store")
        next_segment = 1
        segments: List[str] = []
        for label, source in zip(("entries_a", "entries_b"), sources):
            source_lock = FileLock(source.lock_path)
            with source_lock.acquire(exclusive=False):
                source_manifest = source.load_manifest()
                names = list(source_manifest.segments)
                names.append(source_manifest.active
                             or source.default_active)
                lines: List[str] = []
                for name in names:
                    lines.extend(iter_lines(source.file(name)))
            stats[label] = len(lines)
            if not lines:
                continue
            new_name = layout_out.segment_name(next_segment)
            next_segment += 1
            tmp = layout_out.file(new_name + ".tmp")
            layout_out.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.writelines(lines)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, layout_out.file(new_name))
            segments.append(new_name)
        merged = Manifest(generation=1, next_segment=next_segment,
                          active=layout_out.default_active,
                          segments=segments)
        layout_out.write_manifest(merged)
        stats["entries_out"] = stats["entries_a"] + stats["entries_b"]
        stats["segments_out"] = len(segments)
        if compact and segments:
            compacted, cstats = compact_locked(layout_out, merged)
            stats["entries_out"] = cstats.entries_out
            stats["segments_out"] = len(compacted.segments)
            stats["compaction"] = cstats.to_dict()
    return stats


# ----------------------------------------------------------------------
# verify / stats

def verify_store(path: Union[str, pathlib.Path]
                 ) -> Tuple[List[str], List[str]]:
    """Check manifest/segment consistency: ``(problems, warnings)``.

    *Problems* (exit non-zero in the CLI) are states the store cannot
    serve correctly from: an unparseable or structurally-invalid
    manifest, duplicate or missing segment files, the active name
    colliding with a sealed one.  *Warnings* are tolerated-by-design
    states: torn tails, corrupt data lines (the reader skips them),
    and orphan files from an interrupted compaction.
    """
    layout = SegmentLayout(path)
    problems: List[str] = []
    warnings: List[str] = []

    raw = None
    try:
        raw = layout.manifest_path.read_text(encoding="utf-8")
    except OSError:
        pass
    if raw is None:
        manifest = Manifest(active=layout.default_active)
        # numbered segments with no manifest are unreachable data
        for orphan in layout.orphan_files(manifest):
            problems.append(f"segment {orphan.name} exists but no "
                            "manifest references it")
    else:
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            return [f"manifest {layout.manifest_path.name} is not "
                    f"valid JSON: {exc}"], warnings
        if not isinstance(data, dict):
            return [f"manifest {layout.manifest_path.name} is not an "
                    "object"], warnings
        if data.get("version") != MANIFEST_VERSION:
            problems.append(f"unsupported manifest version "
                            f"{data.get('version')!r}")
        for field, kind in (("generation", int), ("next_segment", int),
                            ("active", str), ("segments", list)):
            if not isinstance(data.get(field), kind):
                problems.append(f"manifest field {field!r} missing or "
                                f"not {kind.__name__}")
        if problems:
            return problems, warnings
        manifest = Manifest(generation=data["generation"],
                            next_segment=data["next_segment"],
                            active=data["active"],
                            segments=[str(s) for s in data["segments"]])
        if len(set(manifest.segments)) != len(manifest.segments):
            problems.append("manifest lists a segment twice")
        if manifest.active in manifest.segments:
            problems.append(f"active segment {manifest.active!r} is "
                            "also listed as sealed")
        for name in manifest.segments:
            if not os.path.exists(layout.file(name)):
                problems.append(f"sealed segment {name} is listed in "
                                "the manifest but missing on disk")
        for orphan in layout.orphan_files(manifest):
            warnings.append(f"orphan file {orphan.name} (interrupted "
                            "compaction?); the next compaction "
                            "reclaims it")

    for name in manifest.segments + [manifest.active]:
        file = layout.file(name)
        if not os.path.exists(file):
            continue  # a missing *active* file is a fresh segment
        complete = corrupt = 0
        with open(file, "r", encoding="utf-8") as fh:
            for line in fh:
                if not line.endswith("\n"):
                    warnings.append(f"{name}: torn tail "
                                    "(crashed writer); skipped on read")
                    break
                complete += 1
                if parse_entry(line) is None:
                    corrupt += 1
        if corrupt:
            warnings.append(f"{name}: {corrupt}/{complete} corrupt "
                            "line(s); skipped on read")
    return problems, warnings


def store_stats(path: Union[str, pathlib.Path]) -> Dict:
    """Sizes and logical composition of one store (``repro cache
    stats``)."""
    layout = SegmentLayout(path)
    lock = FileLock(layout.lock_path)
    with lock.acquire(exclusive=False):
        manifest = layout.load_manifest()
        per_segment = []
        all_lines: List[str] = []
        for name in manifest.segments + [manifest.active]:
            file = layout.file(name)
            lines = list(iter_lines(file))
            try:
                size = os.stat(file).st_size
            except OSError:
                size = 0
            per_segment.append({
                "name": name,
                "sealed": name != manifest.active,
                "bytes": size,
                "entries": len(lines),
            })
            all_lines.extend(lines)
    retained, cstats = compact_lines(all_lines)
    return {
        "directory": str(layout.directory),
        "generation": manifest.generation,
        "segments": per_segment,
        "sealed_segments": len(manifest.segments),
        "total_bytes": sum(seg["bytes"] for seg in per_segment),
        "total_entries": cstats.entries_in,
        "retained_after_compaction": len(retained),
        "droppable_entries": cstats.entries_dropped,
        "droppable_duplicates": cstats.dropped_duplicates,
        "droppable_subsumed": cstats.dropped_subsumed,
        "droppable_tombstoned": cstats.dropped_tombstoned,
        "corrupt_lines": cstats.dropped_corrupt,
    }
