"""Exception hierarchy shared across the ER library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class IRError(ReproError):
    """Malformed IR: parse errors, verifier failures, unknown names."""


class IRParseError(IRError):
    """Raised by the textual IR parser, with line information."""

    def __init__(self, message: str, line_no: int = 0, line: str = ""):
        self.line_no = line_no
        self.line = line
        if line_no:
            message = f"line {line_no}: {message}: {line.strip()!r}"
        super().__init__(message)


class InterpError(ReproError):
    """Internal interpreter error (not a guest-program failure)."""


class GuestFailure(ReproError):
    """A failure in the *interpreted* program (crash, assert, abort).

    This is the event ER exists to reproduce.  Carries a
    :class:`repro.interp.failures.FailureInfo` describing the failure.
    """

    def __init__(self, info):
        self.info = info
        super().__init__(str(info))


class TraceError(ReproError):
    """Trace encoding/decoding problem (corrupt packets, bad stream)."""


class TraceTruncatedError(TraceError):
    """The ring buffer overflowed and the start of the trace was lost."""


class SolverError(ReproError):
    """Internal solver error (malformed terms, unsupported ops)."""


class SolverTimeout(SolverError):
    """The solver exhausted its work budget: the symbolic-execution stall.

    This is the trigger for key-data-value selection in ER.
    """

    def __init__(self, work_spent: int, work_limit: int, context: str = ""):
        self.work_spent = work_spent
        self.work_limit = work_limit
        self.context = context
        super().__init__(
            f"solver timeout after {work_spent} work units "
            f"(limit {work_limit}){': ' + context if context else ''}"
        )


class UnsatError(SolverError):
    """The path constraint is unsatisfiable (trace/program mismatch)."""


class SearchCancelled(Exception):
    """A cooperative control aborted a search before it finished.

    Two searches share this signal: gap-recovery shards stop once the
    parent has finalized a winner in an earlier subspace, and portfolio
    racers stop once a sibling backend has produced the committed
    answer.  ``attempts`` counts the replays a gap shard completed
    before stopping (so the parent's attempt accounting still closes);
    portfolio racers leave it at zero.

    Deliberately *not* a :class:`ReproError`: cancellation is control
    flow between cooperating searches, never a library failure callers
    should catch wholesale.
    """

    def __init__(self, attempts: int = 0):
        super().__init__(f"search cancelled after {attempts} attempts")
        self.attempts = attempts


class SymexError(ReproError):
    """Shepherded symbolic execution diverged from the recorded trace."""


class TraceDivergence(SymexError):
    """Symbolic execution could not follow the recorded control flow."""


class ReconstructionError(ReproError):
    """The iterative reconstruction loop could not reproduce the failure."""
