"""Scheduler and trace-attribution details of the interpreter."""

import pytest

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.ringbuffer import RingBuffer


def two_printers(loops=5):
    """Two threads each emit their tid a few times."""
    b = ModuleBuilder("printers")
    for wid in (1, 2):
        f = b.function(f"worker{wid}", [])
        f.block("entry")
        f.const(0, dest="%i")
        f.jmp("loop")
        f.block("loop")
        done = f.cmp("uge", "%i", loops)
        f.br(done, "out", "body")
        f.block("body")
        f.output("log", wid, 1)
        f.add("%i", 1, dest="%i")
        f.jmp("loop")
        f.block("out")
        f.ret(0)
    m = b.function("main", [])
    m.block("entry")
    t1 = m.spawn("worker1", [], dest="%t1")
    t2 = m.spawn("worker2", [], dest="%t2")
    m.join("%t1")
    m.join("%t2")
    m.ret(0)
    return b.build()


class TestScheduling:
    def test_fine_quantum_interleaves_output(self):
        module = two_printers()
        run = Interpreter(module, Environment({}, quantum=4)).run()
        log = run.outputs["log"]
        assert set(log) == {1, 2}
        # with a 4-instruction quantum neither thread finishes first
        first_half = log[: len(log) // 2]
        assert {1, 2} <= set(first_half)

    def test_coarse_quantum_serializes(self):
        module = two_printers()
        run = Interpreter(module, Environment({}, quantum=10_000)).run()
        log = run.outputs["log"]
        # each worker's output is contiguous
        assert bytes(sorted(log)) == log or \
            log == bytes([1] * 5 + [2] * 5) or log == bytes([2] * 5 + [1] * 5)

    def test_chunk_tids_match_schedule(self):
        module = two_printers()
        encoder = PTEncoder(RingBuffer())
        run = Interpreter(module, Environment({}, quantum=4),
                          tracer=encoder).run()
        trace = decode(encoder.buffer)
        assert set(trace.tids()) == {0, 1, 2}
        assert trace.instr_count == run.instr_count

    def test_chunk_timestamps_nondecreasing(self):
        module = two_printers()
        encoder = PTEncoder(RingBuffer())
        Interpreter(module, Environment({}, quantum=4),
                    tracer=encoder).run()
        trace = decode(encoder.buffer)
        timestamps = [c.timestamp for c in trace.chunks]
        assert timestamps == sorted(timestamps)

    def test_spawn_returns_tids_in_order(self):
        module = two_printers()
        interp = Interpreter(module, Environment({}, quantum=50))
        interp.run()
        assert [t.tid for t in interp.threads] == [0, 1, 2]

    def test_join_on_finished_thread_is_instant(self):
        b = ModuleBuilder("j")
        f = b.function("quick", [])
        f.block("entry")
        f.ret(0)
        m = b.function("main", [])
        m.block("entry")
        t = m.spawn("quick", [], dest="%t")
        # let it finish: coarse quantum means it runs to completion when
        # scheduled, before main's join retries
        m.join("%t")
        m.ret(0)
        run = Interpreter(b.build(), Environment({}, quantum=100)).run()
        assert run.failure is None


class TestReportRendering:
    def test_summary_lists_all_iterations(self, table_module):
        from repro.core import ExecutionReconstructor, ProductionSite

        er = ExecutionReconstructor(table_module, work_limit=30)
        report = er.reconstruct(ProductionSite(
            lambda occ: Environment({"stdin": bytes([9, 9])})))
        text = report.summary()
        for iteration in report.iterations:
            assert f"occurrence {iteration.occurrence}" in text
        assert "verified by replay: True" in text

    def test_totals_aggregate(self, table_module):
        from repro.core import ExecutionReconstructor, ProductionSite

        er = ExecutionReconstructor(table_module, work_limit=30)
        report = er.reconstruct(ProductionSite(
            lambda occ: Environment({"stdin": bytes([9, 9])})))
        assert report.total_symex_wall_seconds >= 0
        assert report.total_symex_modelled_seconds >= 0
        if report.occurrences > 1:
            assert report.total_recorded_bytes > 0
