"""One-shot evaluation report: every table and figure, as markdown.

Used by ``python -m repro report``; also callable as a library:

    from repro.evaluation.report import run_full_report
    print(run_full_report())
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .. import telemetry

from .accuracy import run_accuracy
from .casestudy import run_casestudy
from .figure1 import run_figure1
from .figure5 import run_figure5
from .figure6 import run_figure6
from .random_cmp import run_random_comparison
from .table1 import run_table1

#: (section title, harness) in the paper's presentation order
EXPERIMENTS: List[Tuple[str, Callable]] = [
    ("Figure 1 — property spectra of prior techniques", run_figure1),
    ("Table 1 — bugs reproduced by ER", run_table1),
    ("Figure 5 — benefit of recorded data values", run_figure5),
    ("Figure 6 — runtime monitoring overhead", run_figure6),
    ("Accuracy — ER vs REPT (§5.2)", run_accuracy),
    ("Selection vs random recording (§5.2)", run_random_comparison),
    ("Case study — MIMIC failure localization (§5.4)", run_casestudy),
]


def run_report_sections(only: Optional[List[str]] = None,
                        echo: Optional[Callable[[str], None]] = None,
                        parallel: int = 1) -> List[Dict]:
    """Run the selected harnesses; one dict per section (the structured
    form behind both the markdown report and ``report --json``).

    ``parallel`` fans the workload-heavy harnesses (currently Table 1)
    out over a process pool; the other sections are cheap and stay
    serial.
    """
    sections: List[Dict] = []
    for title, harness in EXPERIMENTS:
        if only and not any(key.lower() in title.lower() for key in only):
            continue
        if echo:
            echo(f"running: {title} ...")
        kwargs = ({"parallel": parallel}
                  if parallel > 1 and harness is run_table1 else {})
        with telemetry.span("evaluation.section", title=title) as sp:
            result = harness(**kwargs)
        sections.append({"title": title, "body": result.render(),
                         "seconds": round(sp.seconds, 3)})
    return sections


def run_full_report(only: Optional[List[str]] = None,
                    echo: Optional[Callable[[str], None]] = None,
                    parallel: int = 1) -> str:
    """Run every evaluation harness; return one markdown document."""
    sections = [
        f"## {s['title']}\n\n```\n{s['body']}\n```\n\n"
        f"*(regenerated in {s['seconds']:.1f} s)*\n"
        for s in run_report_sections(only, echo, parallel=parallel)]
    header = ("# ER evaluation report\n\n"
              "Regenerated tables and figures for *Execution "
              "Reconstruction* (PLDI 2021); see EXPERIMENTS.md for the "
              "paper-vs-measured discussion.\n\n")
    return header + "\n".join(sections)
