"""Benchmarks: regenerate Figures 1, 5 and 6."""

import pytest

from repro.evaluation.figure1 import run_figure1
from repro.evaluation.figure5 import run_figure5
from repro.evaluation.figure6 import run_figure6


@pytest.mark.benchmark(group="figure1")
def test_figure1(benchmark, save_artifact):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    save_artifact("figure1", result.render())
    assert result.clears_all() == ["ER"]


@pytest.mark.benchmark(group="figure5")
def test_figure5(benchmark, save_artifact):
    """Symbex progress with 0/1st/2nd-iteration data values (PHP-74194)."""
    result = benchmark.pedantic(run_figure5, rounds=1, iterations=1)
    save_artifact("figure5", result.render())
    assert result.strictly_improving          # paper: 11468 > 5006 > 1800 s
    assert result.speedup() > 2.0             # paper: 6.4x


@pytest.mark.benchmark(group="figure6")
def test_figure6(benchmark, save_artifact):
    """Monitoring overhead, ER vs rr, 10 runs with error bars."""
    result = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    save_artifact("figure6", result.render())
    assert result.er_average < 0.011          # paper: 0.3% avg, 1.1% max
    assert result.er_max < 0.02
    assert 0.2 < result.rr_average < 1.5      # paper: 48% avg
    assert result.rr_max > result.er_max * 20
