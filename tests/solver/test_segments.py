"""Segmented solver-cache store: seal, compact, merge, verify.

The properties pinned here are the ones concurrent users rely on:

* sealing and compaction are invisible — a fresh handle and a live
  concurrent handle answer every previously-answerable query
  identically before, during (compactor killed at any install
  boundary), and after;
* compaction only drops redundancy — duplicates (last writer wins),
  tombstoned entries, and infeasible sets subsumed by a retained
  subset — so replaying the compacted store builds the same index;
* merge unions two independent stores (every query either source
  answered, the merged store answers) with last-writer-wins on the one
  entry kind that can conflict, value enumerations.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import segments
from repro.solver.diskcache import DiskSolverCache
from repro.solver.segments import (Manifest, SegmentLayout, compact_lines,
                                   compact_store, merge_caches,
                                   set_fault_hook, store_stats,
                                   verify_store)


def _verdict(key, feasible, model=None):
    entry = {"k": sorted(key), "f": feasible}
    if model:
        entry["m"] = model
    return json.dumps(entry, separators=(",", ":")) + "\n"


def _values(key, term, limit, values):
    return json.dumps({"k": sorted(key), "t": term, "l": limit,
                       "v": values, "c": True,
                       "w": [{"x": v} for v in values]},
                      separators=(",", ":")) + "\n"


def _tomb(key):
    return json.dumps({"k": sorted(key), "x": True},
                      separators=(",", ":")) + "\n"


class TestManifest:
    def test_roundtrip(self, tmp_path):
        layout = SegmentLayout(tmp_path)
        manifest = Manifest(generation=3, next_segment=5,
                            active="solver-cache.00004.jsonl",
                            segments=["solver-cache.00002.jsonl"])
        layout.write_manifest(manifest)
        loaded = layout.load_manifest()
        assert loaded.to_dict() == manifest.to_dict()

    def test_missing_manifest_is_legacy_default(self, tmp_path):
        layout = SegmentLayout(tmp_path)
        manifest = layout.load_manifest()
        assert manifest.generation == 0
        assert manifest.active == "solver-cache.jsonl"
        assert manifest.segments == []

    def test_corrupt_manifest_degrades_to_empty_view(self, tmp_path):
        layout = SegmentLayout(tmp_path)
        layout.manifest_path.write_text('{"generation": "nope"}')
        manifest = layout.load_manifest()  # warns, must not raise
        assert manifest.segments == []

    def test_jsonl_path_sets_stem(self, tmp_path):
        layout = SegmentLayout(tmp_path / "mycache.jsonl")
        assert layout.default_active == "mycache.jsonl"
        assert layout.segment_name(3) == "mycache.00003.jsonl"
        assert layout.manifest_path.name == "mycache.manifest.json"


class TestSealing:
    def test_store_seals_at_cap_and_stays_answerable(self, tmp_path):
        cache = DiskSolverCache(tmp_path, seal_bytes=1,
                                auto_compact=False)
        for i in range(5):
            cache.store([f"d{i}"], i % 2 == 0)
        layout = SegmentLayout(tmp_path)
        manifest = layout.load_manifest()
        assert len(manifest.segments) == 5
        assert manifest.active not in manifest.segments
        for handle in (cache, DiskSolverCache(tmp_path)):
            for i in range(5):
                assert handle.lookup([f"d{i}"])[0] is (i % 2 == 0)

    def test_auto_compaction_bounds_sealed_segments(self, tmp_path):
        cache = DiskSolverCache(tmp_path, seal_bytes=1)
        for i in range(6):
            cache.store([f"d{i}"], True)
        manifest = SegmentLayout(tmp_path).load_manifest()
        assert len(manifest.segments) == 1  # collapsed on every seal
        fresh = DiskSolverCache(tmp_path)
        for i in range(6):
            assert fresh.lookup([f"d{i}"])[0] is True

    def test_compaction_drops_subsumed_superset_same_answers(
            self, tmp_path):
        cache = DiskSolverCache(tmp_path, auto_compact=False)
        cache.store(["a"], False)
        cache.store(["a", "b"], False)  # strict superset: droppable
        cache.compact()
        stats = store_stats(tmp_path)
        assert stats["total_entries"] == 1
        fresh = DiskSolverCache(tmp_path)
        assert fresh.lookup(["a"])[:2] == (False, None)
        # the dropped superset is still answered, now by subsumption
        assert fresh.lookup(["a", "b"])[:2] == (False, None)

    def test_live_handle_follows_external_compaction(self, tmp_path):
        writer = DiskSolverCache(tmp_path, seal_bytes=1,
                                 auto_compact=False)
        for i in range(4):
            writer.store([f"d{i}"], i % 2 == 0)
        live = DiskSolverCache(tmp_path)
        before = [live.lookup([f"d{i}"]) for i in range(4)]
        compact_store(tmp_path)  # e.g. `repro cache compact` elsewhere
        assert [live.lookup([f"d{i}"]) for i in range(4)] == before
        assert [writer.lookup([f"d{i}"]) for i in range(4)] == before


class TestCompactLines:
    def test_duplicate_keys_keep_last_writer(self):
        lines = [_verdict({"a"}, True),
                 _verdict({"a"}, True, model={"x": 1})]
        retained, stats = compact_lines(lines)
        assert retained == [lines[1]]
        assert stats.dropped_duplicates == 1

    def test_tombstone_erases_key_and_itself(self):
        lines = [_verdict({"a"}, True),
                 _values({"a"}, "t", 4, [1]),
                 _tomb({"a"}),
                 _verdict({"b"}, False)]
        retained, stats = compact_lines(lines)
        assert retained == [lines[3]]
        assert stats.dropped_tombstoned == 3  # verdict + values + stone

    def test_entry_after_tombstone_survives(self):
        lines = [_verdict({"a"}, True), _tomb({"a"}),
                 _verdict({"a"}, False)]
        retained, _stats = compact_lines(lines)
        assert retained == [lines[2]]

    def test_subsumed_infeasible_superset_dropped(self):
        lines = [_verdict({"a"}, False), _verdict({"a", "b"}, False)]
        retained, stats = compact_lines(lines)
        assert retained == [lines[0]]
        assert stats.dropped_subsumed == 1

    def test_feasible_superset_never_subsumption_dropped(self):
        # a feasible superset may carry the model an exact feasible
        # entry lacks; both must survive
        lines = [_verdict({"a"}, True),
                 _verdict({"a", "b"}, True, model={"x": 1})]
        retained, _stats = compact_lines(lines)
        assert retained == lines

    def test_corrupt_lines_dropped(self):
        lines = ["{not json}\n", _verdict({"a"}, True), "{}\n"]
        retained, stats = compact_lines(lines)
        assert retained == [lines[1]]
        assert stats.dropped_corrupt == 2

    # -- the general property: replaying the compacted store answers
    # -- every query the original store answered, identically

    KEYS = st.frozensets(st.sampled_from(["a", "b", "c", "d"]),
                         min_size=1, max_size=3)
    SPEC = st.one_of(
        st.tuples(st.just("f"), KEYS, st.booleans()),
        st.tuples(st.just("v"), KEYS, st.sampled_from(["t1", "t2"]),
                  st.integers(1, 2)),
        st.tuples(st.just("x"), KEYS),
    )

    @staticmethod
    def _line(spec):
        if spec[0] == "f":
            return _verdict(spec[1], spec[2])
        if spec[0] == "v":
            return _values(spec[1], spec[2], spec[3], [spec[3]])
        return _tomb(spec[1])

    @staticmethod
    def _replay(lines):
        """A minimal reader: the final index replay would build."""
        feasible, values = {}, {}
        for line in lines:
            entry = json.loads(line)
            key = frozenset(entry["k"])
            if entry.get("x"):
                feasible.pop(key, None)
                for index in [i for i in values if i[0] == key]:
                    del values[index]
            elif "t" in entry:
                values[(key, entry["t"], entry["l"])] = entry["v"]
            else:
                feasible[key] = entry["f"]
        return feasible, values

    @settings(max_examples=120, deadline=None)
    @given(specs=st.lists(SPEC, max_size=25))
    def test_replay_equivalence(self, specs):
        lines = [self._line(spec) for spec in specs]
        retained, stats = compact_lines(lines)
        feasible0, values0 = self._replay(lines)
        feasible1, values1 = self._replay(retained)
        # value enumerations: exactly the surviving originals
        assert values1 == values0
        # nothing new, nothing flipped
        assert set(feasible1) <= set(feasible0)
        for key in feasible1:
            assert feasible1[key] == feasible0[key]
        # every original answer is preserved: feasible keys exactly,
        # infeasible keys either exactly or via a retained subset
        for key, verdict in feasible0.items():
            if verdict:
                assert feasible1.get(key) is True
            else:
                assert feasible1.get(key) is False or any(
                    other < key and not v
                    for other, v in feasible1.items())
        # accounting adds up and compaction is idempotent
        assert stats.entries_out == len(retained)
        assert stats.entries_in == len(lines)
        assert stats.entries_dropped == len(lines) - len(retained)
        again, _ = compact_lines(retained)
        assert again == retained


QUERIES = [["a"], ["a", "b"], ["a", "b", "z"], ["c"], ["c", "d"],
           ["zz"]]


def _build_duplicate_heavy(tmp_path):
    cache = DiskSolverCache(tmp_path, auto_compact=False)
    cache.store(["a"], False)
    cache.store(["a", "b"], False)  # subsumed once ["a"] is retained
    cache.store(["c"], True, model={"x": 1})
    cache.store_values(["c"], "t", 4, [1, 2], True, None,
                       [{"x": 1}, {"x": 2}])
    with open(cache.path, "a", encoding="utf-8") as fh:
        fh.write(_verdict({"a"}, False))  # merged-in duplicate
    return cache


def _answers(cache):
    out = []
    for query in QUERIES:
        found = cache.lookup(query)
        out.append(found[:2] if found is not None else None)
    out.append(cache.lookup_values(["c"], "t", 4))
    return out


class TestCrashSafety:
    """Kill the compactor at every install boundary; nobody notices."""

    class Killed(Exception):
        pass

    @pytest.mark.parametrize("point", ["compact.temp-written",
                                       "compact.renamed",
                                       "compact.manifest-swapped"])
    def test_compactor_killed_at_boundary(self, tmp_path, point):
        live = _build_duplicate_heavy(tmp_path)
        observer = DiskSolverCache(tmp_path)
        expected = _answers(observer)
        assert _answers(live) == expected

        def hook(reached):
            if reached == point:
                raise self.Killed(reached)

        set_fault_hook(hook)
        try:
            with pytest.raises(self.Killed):
                compact_store(tmp_path)
        finally:
            set_fault_hook(None)

        # a fresh handle and both live handles answer identically
        assert _answers(DiskSolverCache(tmp_path)) == expected
        assert _answers(live) == expected
        assert _answers(observer) == expected
        # the store is not stuck: the next compaction completes and
        # reclaims whatever the dead one left behind
        compact_store(tmp_path)
        assert _answers(DiskSolverCache(tmp_path)) == expected
        problems, _warnings = verify_store(tmp_path)
        assert problems == []

    def test_interrupted_install_leaves_reclaimable_orphan(
            self, tmp_path):
        _build_duplicate_heavy(tmp_path)

        def hook(reached):
            if reached == "compact.renamed":
                raise self.Killed(reached)

        set_fault_hook(hook)
        try:
            with pytest.raises(self.Killed):
                compact_store(tmp_path)
        finally:
            set_fault_hook(None)
        _problems, warnings = verify_store(tmp_path)
        assert any("orphan" in warning for warning in warnings)
        compact_store(tmp_path)
        _problems, warnings = verify_store(tmp_path)
        assert not any("orphan" in warning for warning in warnings)


class TestMerge:
    def test_merged_store_answers_either_source(self, tmp_path):
        a = DiskSolverCache(tmp_path / "a")
        b = DiskSolverCache(tmp_path / "b")
        a.store(["d1"], False)
        a.store(["d2"], True, model={"x": 1})
        b.store(["d1"], False)  # both machines solved it cold
        b.store(["d3"], True, model={"y": 2})
        stats = merge_caches(tmp_path / "a", tmp_path / "b",
                             tmp_path / "out")
        assert (stats["entries_a"], stats["entries_b"]) == (2, 2)
        merged = DiskSolverCache(tmp_path / "out")
        assert merged.lookup(["d1"])[:2] == (False, None)
        assert merged.lookup(["d2"])[:2] == (True, {"x": 1})
        assert merged.lookup(["d3"])[:2] == (True, {"y": 2})

    def test_merge_lww_on_conflicting_value_enumerations(self,
                                                         tmp_path):
        a = DiskSolverCache(tmp_path / "a")
        b = DiskSolverCache(tmp_path / "b")
        # same index, truncated differently on each machine: b wins
        a.store_values(["k"], "t", 4, [1], False, "limit", [{"x": 1}])
        b.store_values(["k"], "t", 4, [1, 2], True, None,
                       [{"x": 1}, {"x": 2}])
        merge_caches(tmp_path / "a", tmp_path / "b", tmp_path / "out")
        merged = DiskSolverCache(tmp_path / "out")
        values, complete, _reason, _w = merged.lookup_values(["k"],
                                                             "t", 4)
        assert (values, complete) == ([1, 2], True)

    def test_merge_compacts_duplicates_away(self, tmp_path):
        a = DiskSolverCache(tmp_path / "a")
        b = DiskSolverCache(tmp_path / "b")
        for i in range(20):
            a.store([f"d{i}"], False)
            b.store([f"d{i}"], False)
        raw = merge_caches(tmp_path / "a", tmp_path / "b",
                           tmp_path / "raw", compact=False)
        assert raw["entries_out"] == 40
        compacted = merge_caches(tmp_path / "a", tmp_path / "b",
                                 tmp_path / "out")
        assert compacted["entries_out"] == 20
        assert compacted["compaction"]["dropped_duplicates"] == 20

    def test_merge_refuses_nonempty_output(self, tmp_path):
        a = DiskSolverCache(tmp_path / "a")
        a.store(["d1"], True)
        out = DiskSolverCache(tmp_path / "out")
        out.store(["d2"], True)
        DiskSolverCache(tmp_path / "b").store(["d3"], True)
        with pytest.raises(ValueError, match="already holds"):
            merge_caches(tmp_path / "a", tmp_path / "b",
                         tmp_path / "out")

    def test_merge_refuses_source_as_output(self, tmp_path):
        DiskSolverCache(tmp_path / "a").store(["d1"], True)
        DiskSolverCache(tmp_path / "b").store(["d2"], True)
        with pytest.raises(ValueError, match="source"):
            merge_caches(tmp_path / "a", tmp_path / "b",
                         tmp_path / "a")


class TestVerify:
    def test_healthy_store_is_ok(self, tmp_path):
        cache = DiskSolverCache(tmp_path, seal_bytes=1)
        for i in range(3):
            cache.store([f"d{i}"], True)
        problems, warnings = verify_store(tmp_path)
        assert problems == [] and warnings == []

    def test_unparseable_manifest_is_a_problem(self, tmp_path):
        DiskSolverCache(tmp_path).store(["d1"], True)
        SegmentLayout(tmp_path).manifest_path.write_text("{broken")
        problems, _warnings = verify_store(tmp_path)
        assert any("not valid JSON" in p for p in problems)

    def test_missing_manifest_field_is_a_problem(self, tmp_path):
        SegmentLayout(tmp_path).manifest_path.write_text(
            json.dumps({"version": 1, "generation": 1}))
        tmp_path.mkdir(exist_ok=True)
        problems, _warnings = verify_store(tmp_path)
        assert any("next_segment" in p for p in problems)

    def test_missing_sealed_segment_is_a_problem(self, tmp_path):
        cache = DiskSolverCache(tmp_path, seal_bytes=1,
                                auto_compact=False)
        cache.store(["d1"], True)
        layout = SegmentLayout(tmp_path)
        manifest = layout.load_manifest()
        assert manifest.segments
        (tmp_path / manifest.segments[0]).unlink()
        problems, _warnings = verify_store(tmp_path)
        assert any("missing on disk" in p for p in problems)

    def test_segments_without_manifest_are_a_problem(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        (tmp_path / "solver-cache.00001.jsonl").write_text(
            _verdict({"a"}, True))
        problems, _warnings = verify_store(tmp_path)
        assert any("no manifest references" in p for p in problems)

    def test_torn_tail_is_a_warning_not_a_problem(self, tmp_path):
        cache = DiskSolverCache(tmp_path)
        cache.store(["d1"], True)
        with open(cache.path, "a", encoding="utf-8") as fh:
            fh.write('{"k": ["torn"]')
        problems, warnings = verify_store(tmp_path)
        assert problems == []
        assert any("torn tail" in w for w in warnings)

    def test_legacy_store_without_manifest_is_ok(self, tmp_path):
        cache = DiskSolverCache(tmp_path)
        cache.store(["d1"], True)
        assert not SegmentLayout(tmp_path).manifest_path.exists()
        problems, warnings = verify_store(tmp_path)
        assert problems == [] and warnings == []


class TestStoreStats:
    def test_composition_and_droppable_counts(self, tmp_path):
        _build_duplicate_heavy(tmp_path)
        stats = store_stats(tmp_path)
        assert stats["total_entries"] == 5
        assert stats["droppable_duplicates"] == 1
        assert stats["droppable_subsumed"] == 1
        assert stats["retained_after_compaction"] == 3
