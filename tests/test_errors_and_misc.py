"""The error hierarchy and small shared helpers."""

import pytest

from repro.errors import (GuestFailure, IRError, IRParseError,
                          ReconstructionError, ReproError, SolverError,
                          SolverTimeout, SymexError, TraceDivergence,
                          TraceError, TraceTruncatedError, UnsatError)


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for exc in (IRError("x"), IRParseError("x"), SolverError("x"),
                    SolverTimeout(1, 1), UnsatError("x"), TraceError("x"),
                    TraceTruncatedError("x"), SymexError("x"),
                    TraceDivergence("x"), ReconstructionError("x")):
            assert isinstance(exc, ReproError)

    def test_timeout_is_solver_error(self):
        assert isinstance(SolverTimeout(1, 1), SolverError)

    def test_divergence_is_symex_error(self):
        assert isinstance(TraceDivergence("x"), SymexError)

    def test_truncated_is_trace_error(self):
        assert isinstance(TraceTruncatedError("x"), TraceError)


class TestMessages:
    def test_parse_error_includes_line(self):
        exc = IRParseError("bad token", line_no=7, line="  frob %x")
        assert "line 7" in str(exc) and "frob" in str(exc)

    def test_parse_error_without_line(self):
        assert str(IRParseError("oops")) == "oops"

    def test_timeout_reports_work(self):
        exc = SolverTimeout(1500, 1000, context="bounds check")
        assert "1500" in str(exc) and "bounds check" in str(exc)
        assert exc.work_spent == 1500 and exc.work_limit == 1000

    def test_guest_failure_wraps_info(self, abort_module):
        from repro.interp import Environment, Interpreter

        run = Interpreter(abort_module,
                          Environment({"stdin": b"\xff"})).run()
        wrapped = GuestFailure(run.failure)
        assert wrapped.info is run.failure
        assert "abort" in str(wrapped)


class TestParserNumerics:
    def test_negative_immediates(self):
        from repro.ir import parse_module

        module = parse_module(
            "func main() {\nentry:\n  %x = const -1\n  ret %x\n}")
        from repro.interp import Environment, Interpreter

        result = Interpreter(module, Environment({})).run()
        assert result.return_value == (1 << 64) - 1

    def test_hex_immediates(self):
        from repro.ir import parse_module

        module = parse_module(
            "func main() {\nentry:\n  %x = const 0xFF\n  ret %x\n}")
        from repro.interp import Environment, Interpreter

        assert Interpreter(module, Environment({})).run().return_value == 255


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports(self):
        import repro.core, repro.solver, repro.symex, repro.trace
        import repro.baselines, repro.invariants, repro.usecases
        import repro.workloads, repro.evaluation

        for pkg in (repro.core, repro.solver, repro.symex, repro.trace,
                    repro.baselines, repro.invariants, repro.usecases,
                    repro.workloads):
            for name in pkg.__all__:
                assert hasattr(pkg, name), (pkg.__name__, name)

    def test_version(self):
        import repro

        assert repro.__version__
