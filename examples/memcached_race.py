#!/usr/bin/env python3
"""Reproduce the memcached CVE-2019-11596 race (multithreaded, §3.4).

The failure only manifests under a specific thread interleaving: one
worker tears a shared connection down inside another worker's dump
window.  ER's trace records the scheduler chunks (the PT timestamp
packets of §3.4), so shepherded symbolic execution replays the exact
coarse-grained interleaving — and the generated test case pins the same
schedule, making the heisenbug deterministic.

Run:  python examples/memcached_race.py
"""

from repro import Environment, Interpreter
from repro.core import ExecutionReconstructor, ProductionSite
from repro.trace import PTEncoder, RingBuffer, decode
from repro.workloads import get_workload


def main():
    workload = get_workload("memcached-2019-11596")
    module = workload.fresh_module()

    # --- the race fires only for the right schedule
    racy_env = workload.failing_env(1)
    encoder = PTEncoder(RingBuffer())
    crash = Interpreter(module, racy_env, tracer=encoder).run()
    trace = decode(encoder.buffer)
    print("=== the racy schedule ===")
    print(f"failure: {crash.failure}")
    schedule = [(c.tid, c.n_instrs) for c in trace.chunks]
    print(f"scheduler chunks (tid, instrs): {schedule[:12]} ...")
    print(f"threads involved: {trace.tids()}\n")

    # the same commands with a coarser quantum don't crash
    calm = workload.failing_env(1)
    calm.quantum = 500
    calm_run = Interpreter(module, calm).run()
    print(f"same inputs, coarser schedule -> failure: {calm_run.failure}\n")

    # --- ER reconstructs input *and* schedule
    print("=== execution reconstruction ===")
    er = ExecutionReconstructor(module, work_limit=workload.work_limit)
    report = er.reconstruct(ProductionSite(workload.failing_env))
    print(report.summary())

    test_case = report.test_case
    print(f"\ntest case pins quantum={test_case.quantum} and streams "
          f"{sorted(test_case.streams)}")
    replay = Interpreter(module, test_case.environment()).run()
    print(f"replay: {replay.failure}")
    assert replay.failure is not None and \
        replay.failure.matches(crash.failure)
    print("\nthe heisenbug is now a deterministic unit test")


if __name__ == "__main__":
    main()
