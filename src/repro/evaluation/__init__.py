"""Harnesses that regenerate every table and figure of the evaluation."""

from .accuracy import AccuracyResult, run_accuracy
from .casestudy import CaseStudyResult, run_casestudy
from .figure1 import Figure1Result, run_figure1
from .figure5 import Figure5Result, run_figure5
from .figure6 import Figure6Result, measure_workload, run_figure6
from .random_cmp import RandomCmpResult, run_random_comparison
from .report import run_full_report
from .table1 import Table1Result, Table1Row, run_table1, run_workload

__all__ = [
    "AccuracyResult",
    "run_accuracy",
    "CaseStudyResult",
    "run_casestudy",
    "Figure1Result",
    "run_figure1",
    "Figure5Result",
    "run_figure5",
    "Figure6Result",
    "measure_workload",
    "run_figure6",
    "RandomCmpResult",
    "run_random_comparison",
    "run_full_report",
    "Table1Result",
    "Table1Row",
    "run_table1",
    "run_workload",
]
