"""The Table-1 workload registry."""

from __future__ import annotations

from typing import Dict, List

from .base import Workload
from .bash import bash_workloads
from .libpng import libpng_workloads
from .matrixssl import matrixssl_workloads
from .memcached import memcached_workloads
from .nasm import nasm_workloads
from .objdump import objdump_workloads
from .php import php_workloads
from .pbzip2 import pbzip2_workloads
from .python_rt import python_workloads
from .sqlite import sqlite_workloads

#: Table-1 row order
_ORDER = [
    "php-2012-2386",
    "php-74194",
    "sqlite-7be932d",
    "sqlite-787fa71",
    "sqlite-4e8e485",
    "nasm-2004-1287",
    "objdump-2018-6323",
    "matrixssl-2014-1569",
    "memcached-2019-11596",
    "libpng-2004-0597",
    "bash-108885",
    "python-2018-1000030",
    "pbzip2-uaf",
]


def all_workloads() -> List[Workload]:
    """All 13 Table-1 workloads, in the paper's row order."""
    loads: Dict[str, Workload] = {}
    for factory in (php_workloads, sqlite_workloads, nasm_workloads,
                    objdump_workloads, matrixssl_workloads,
                    memcached_workloads, libpng_workloads, bash_workloads,
                    python_workloads, pbzip2_workloads):
        for workload in factory():
            loads[workload.name] = workload
    return [loads[name] for name in _ORDER]


def get_workload(name: str) -> Workload:
    for workload in all_workloads():
        if workload.name == name:
            return workload
    raise KeyError(f"no workload named {name!r}")


def workload_names() -> List[str]:
    return list(_ORDER)
