"""Session-scoped memoization of solver queries (+ warm-start models).

Shepherded symbolic execution issues a solver query at *every* symbolic
memory access, and consecutive queries share almost all of their
constraint set — the path constraint grows monotonically, and loops
re-assert the same in-bounds terms over and over.  Three layers exploit
that redundancy, all sound by construction:

1. **Exact-key memoization** — feasibility and value-enumeration
   results are keyed on the *normalized* constraint set (a frozenset of
   hash-consed terms, so duplicated and reordered constraints collapse
   to one key).  Loops that re-check an unchanged constraint set hit
   this layer for free.
2. **Model probing** — a model that satisfied the previous query very
   often satisfies the current, slightly larger one.  Before searching,
   recent models are re-evaluated against the new constraint set with
   the three-valued evaluator (cost: one propagation pass, charged to
   the budget); a surviving model answers feasibility immediately.
3. **Warm-start hints** — the most recent satisfying assignment seeds
   the search's candidate ordering, so the backtracking solver tries
   "what worked last time" before anything else.  Across reconstruction
   iterations the reconstructor shares one cache, warm-starting each
   iteration's search from the previous iteration's partial model.

Timeouts are never cached (they are budget-dependent), and enumeration
results are only cached when complete or limit-truncated — never when
truncated by an unknown value.

A cache belongs to one session (one engine run, or one reconstruction
when the reconstructor threads its cache through every iteration); keys
are :class:`~repro.solver.terms.Term` objects, whose structural
equality keeps them valid even across term-space boundaries.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, FrozenSet, List, Optional, Sequence, Tuple

from .terms import Term

__all__ = ["SolverCache", "ValueEnumeration"]


class ValueEnumeration(List[int]):
    """``feasible_values`` result: a list plus an explicit completeness flag.

    ``complete`` is True only when the enumeration provably exhausted
    the value set (the final query was unsatisfiable).  A False flag
    means *partial*: the ``limit`` was reached, or a model left the term
    unevaluable (``truncated_reason`` says which) — callers must not
    treat the list as the full value set.
    """

    __slots__ = ("complete", "truncated_reason")

    def __init__(self, values: Sequence[int] = (), *,
                 complete: bool = False,
                 truncated_reason: Optional[str] = None):
        super().__init__(values)
        self.complete = complete
        self.truncated_reason = truncated_reason

    def __repr__(self):
        state = "complete" if self.complete \
            else f"partial:{self.truncated_reason}"
        return f"ValueEnumeration({list(self)!r}, {state})"


class SolverCache:
    """Memoized query results and warm-start models for one session."""

    def __init__(self, max_entries: int = 4096, max_models: int = 4):
        self.max_entries = max_entries
        #: frozenset(constraints) -> bool
        self._feasible: "OrderedDict[FrozenSet[Term], bool]" = OrderedDict()
        #: (term, frozenset(constraints), limit) -> ValueEnumeration
        self._values: "OrderedDict[Tuple, ValueEnumeration]" = OrderedDict()
        #: recent satisfying assignments, newest last
        self._models: Deque[Dict[str, int]] = deque(maxlen=max_models)
        self.hits = 0
        self.misses = 0
        self.model_probe_hits = 0

    # -- keys ------------------------------------------------------------

    @staticmethod
    def key(constraints: Sequence[Term]) -> FrozenSet[Term]:
        """Normalized constraint-set key: order and duplicates erased."""
        return frozenset(constraints)

    # -- feasibility -----------------------------------------------------

    def lookup_feasible(self, key: FrozenSet[Term]) -> Optional[bool]:
        result = self._feasible.get(key)
        if result is None:
            self.misses += 1
        else:
            self._feasible.move_to_end(key)
            self.hits += 1
        return result

    def store_feasible(self, key: FrozenSet[Term], feasible: bool) -> None:
        self._feasible[key] = feasible
        self._feasible.move_to_end(key)
        while len(self._feasible) > self.max_entries:
            self._feasible.popitem(last=False)

    # -- value enumeration ----------------------------------------------

    def lookup_values(self, term: Term, key: FrozenSet[Term],
                      limit: int) -> Optional[ValueEnumeration]:
        result = self._values.get((term, key, limit))
        if result is None:
            self.misses += 1
        else:
            self._values.move_to_end((term, key, limit))
            self.hits += 1
        return result

    def store_values(self, term: Term, key: FrozenSet[Term], limit: int,
                     values: ValueEnumeration) -> None:
        self._values[(term, key, limit)] = values
        while len(self._values) > self.max_entries:
            self._values.popitem(last=False)

    # -- models ----------------------------------------------------------

    def record_model(self, assignment: Dict[str, int]) -> None:
        """Remember a satisfying assignment for probing and warm starts."""
        if assignment and assignment not in self._models:
            self._models.append(dict(assignment))

    def recent_models(self) -> List[Dict[str, int]]:
        """Newest first — the best probe order."""
        return list(reversed(self._models))

    def hints(self) -> Dict[str, int]:
        """The most recent model, as search-ordering hints."""
        return dict(self._models[-1]) if self._models else {}

    # -- stats -----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "model_probe_hits": self.model_probe_hits,
            "hit_rate": round(self.hit_rate, 4),
            "feasible_entries": len(self._feasible),
            "value_entries": len(self._values),
        }
