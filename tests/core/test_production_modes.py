"""ProductionSite operational modes: buffer growth, deferred tracing."""

import pytest

from repro import telemetry
from repro.core.production import ProductionSite
from repro.core.reconstructor import ExecutionReconstructor
from repro.errors import ReconstructionError
from repro.interp.env import Environment


def failing_factory(occ):
    return Environment({"stdin": b"\xc8"})


class TestAutoGrowBuffer:
    def test_tiny_buffer_grows_until_trace_fits(self, abort_module):
        site = ProductionSite(failing_factory, ring_capacity=4)
        occurrence = site.run_once(abort_module)
        assert occurrence.failure is not None
        assert site.ring_capacity >= occurrence.trace_bytes
        assert site.occurrences_so_far > 1  # retraced after growing

    def test_growth_disabled_raises(self, abort_module):
        site = ProductionSite(failing_factory, ring_capacity=4,
                              auto_grow_buffer=False)
        with pytest.raises(ReconstructionError, match="ring buffer"):
            site.run_once(abort_module)

    def test_wrap_and_grow_counters(self, abort_module):
        tel = telemetry.Telemetry()
        with telemetry.scoped(tel):
            site = ProductionSite(failing_factory, ring_capacity=4)
            site.run_once(abort_module)
        assert site.ring_wraps >= 1
        assert site.auto_grows >= 1
        # capacity doubled auto_grows times from the initial 4
        assert site.ring_capacity == 4 * 2 ** site.auto_grows
        counters = tel.snapshot()["counters"]
        assert counters["production.ring_wraps"] == site.ring_wraps
        assert counters["production.auto_grows"] == site.auto_grows
        assert tel.gauge("production.ring_capacity").value \
            == site.ring_capacity

    def test_wrap_event_emitted(self, abort_module):
        sink = telemetry.MemorySink()
        with telemetry.scoped(telemetry.Telemetry(sink)):
            ProductionSite(failing_factory,
                           ring_capacity=4).run_once(abort_module)
        wraps = sink.named("production.ring_wrap")
        assert wraps and wraps[0]["attrs"]["capacity"] == 4

    def test_no_wraps_counted_with_ample_buffer(self, abort_module):
        tel = telemetry.Telemetry()
        with telemetry.scoped(tel):
            site = ProductionSite(failing_factory)
            site.run_once(abort_module)
        assert site.ring_wraps == 0 and site.auto_grows == 0
        assert "production.ring_wraps" not in tel.snapshot()["counters"]

    def test_reconstruction_survives_small_initial_buffer(self,
                                                          abort_module):
        er = ExecutionReconstructor(abort_module)
        report = er.reconstruct(
            ProductionSite(failing_factory, ring_capacity=16))
        assert report.success and report.verified


class TestDeferredTracing:
    def test_first_failures_not_traced(self, abort_module):
        site = ProductionSite(failing_factory, trace_after=3)
        occurrence = site.run_once(abort_module)
        assert occurrence.failure is not None
        # 3 untraced failures + 1 traced one
        assert site.occurrences_so_far == 4

    def test_zero_means_always_on(self, abort_module):
        site = ProductionSite(failing_factory, trace_after=0)
        site.run_once(abort_module)
        assert site.occurrences_so_far == 1

    def test_reconstruction_with_deferred_tracing(self, abort_module):
        er = ExecutionReconstructor(abort_module)
        report = er.reconstruct(
            ProductionSite(failing_factory, trace_after=2))
        assert report.success


class TestDeferredErrorSurfacing:
    """A deferred run that fails *unobserved* must not vanish.

    Regression: ``ProductionSite.start()`` used to overwrite the
    previous ``DeferredOccurrence`` handle unconditionally, silently
    discarding a captured exception nobody had polled yet.
    """

    @staticmethod
    def _flaky_factory(fail_on):
        def factory(occ):
            if occ in fail_on:
                raise RuntimeError(f"env exploded at occurrence {occ}")
            return Environment({"stdin": b"\xc8"})
        return factory

    @staticmethod
    def _settle(deferred):
        deferred._thread.join(10.0)
        assert deferred.done()

    def test_unpolled_error_surfaces_on_next_start(self, abort_module):
        site = ProductionSite(self._flaky_factory({1}))
        deferred = site.start(abort_module)
        self._settle(deferred)
        # nobody polls; the next start must surface the loss, not
        # silently discard it
        with pytest.raises(RuntimeError, match="occurrence 1"):
            site.start(abort_module)
        # the stale handle is cleared: the site recovers afterwards
        occurrence = site.start(abort_module).wait()
        assert occurrence.failure is not None

    def test_polled_error_not_raised_twice(self, abort_module):
        site = ProductionSite(self._flaky_factory({1}))
        deferred = site.start(abort_module)
        with pytest.raises(RuntimeError):
            deferred.wait()  # consumed here...
        occurrence = site.start(abort_module).wait()  # ...not again
        assert occurrence.failure is not None

    def test_unraised_error_accessor(self, abort_module):
        site = ProductionSite(self._flaky_factory({1}))
        deferred = site.start(abort_module)
        self._settle(deferred)
        assert isinstance(deferred.unraised_error(), RuntimeError)
        with pytest.raises(RuntimeError):
            deferred.poll()
        assert deferred.unraised_error() is None  # delivered

    def test_successful_run_never_flagged(self, abort_module):
        site = ProductionSite(failing_factory)
        deferred = site.start(abort_module)
        self._settle(deferred)
        assert deferred.unraised_error() is None
        site.start(abort_module).wait()  # no spurious raise


class TestDeferredBaseException:
    """Interpreter-shutdown exceptions propagate; only ``Exception``
    subclasses are stashed for re-raise at poll/wait time."""

    class _Shutdown(BaseException):
        pass

    def test_base_exception_not_stashed(self, abort_module, monkeypatch):
        import threading

        def factory(occ):
            raise self._Shutdown()

        # the BaseException escapes the worker thread by design; keep
        # the default excepthook from spamming the test output
        monkeypatch.setattr(threading, "excepthook", lambda args: None)
        site = ProductionSite(factory)
        deferred = site.start(abort_module)
        deferred._thread.join(10.0)
        assert deferred._error is None  # not trapped
        with pytest.raises(ReconstructionError,
                           match="without a result"):
            deferred.wait()

    def test_plain_exception_still_captured(self, abort_module):
        site = ProductionSite(
            TestDeferredErrorSurfacing._flaky_factory({1}))
        deferred = site.start(abort_module)
        with pytest.raises(RuntimeError, match="env exploded"):
            deferred.wait()
