"""Comparators: rr record/replay, REPT reverse execution, random recording."""

from .random_selection import random_selection
from .rept import ReptAnalyzer, ReptReport, TraceStep
from .rr import RRBaseline, RRRecording

__all__ = [
    "random_selection",
    "ReptAnalyzer",
    "ReptReport",
    "TraceStep",
    "RRBaseline",
    "RRRecording",
]
