"""MIMIC-style invariant-based failure localization (§5.4 case study).

Learns likely invariants from passing executions (the paper uses 4
existing test runs), then checks a failing execution — either the
original failing test or an ER-reconstructed one — and reports the
violated invariants, grouped by function, as candidate root causes.

The case-study claim reproduced here: localizing with the ER-generated
test case finds the *same* root-cause candidates as localizing with the
original failing input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..interp.env import Environment
from ..interp.failures import FailureInfo
from ..ir.module import Module
from .daikon import (Invariant, InvariantMiner, Sample, SampleCollector,
                     check_invariants)


@dataclass
class Localization:
    """Root-cause candidates for one failing execution."""

    failure: Optional[FailureInfo]
    violations: List[Tuple[Invariant, Sample]]

    def candidate_functions(self) -> List[str]:
        """Functions with violated invariants, first-violation order."""
        seen = []
        for inv, _sample in self.violations:
            func = inv.func.split(":")[0]
            if func not in seen:
                seen.append(func)
        return seen

    def violated_invariants(self) -> List[str]:
        seen = []
        for inv, _sample in self.violations:
            desc = inv.describe()
            if desc not in seen:
                seen.append(desc)
        return seen


class MimicLocalizer:
    """Learn invariants from passing runs; localize failing ones."""

    def __init__(self, module: Module, min_samples: int = 2):
        self.module = module
        self.min_samples = min_samples
        self._miner = InvariantMiner()
        self._invariants: Optional[List[Invariant]] = None

    def learn(self, passing_envs: List[Environment]) -> List[Invariant]:
        """Mine likely invariants from passing executions."""
        for env in passing_envs:
            collector = SampleCollector(self.module)
            result = collector.run(env)
            if result.failure is not None:
                raise ValueError(
                    f"training run failed: {result.failure}")
            self._miner.add_samples(collector.samples)
        self._invariants = self._miner.invariants(self.min_samples)
        return self._invariants

    @property
    def invariants(self) -> List[Invariant]:
        if self._invariants is None:
            raise ValueError("call learn() first")
        return self._invariants

    def localize(self, failing_env: Environment) -> Localization:
        """Run a failing input and report violated invariants."""
        collector = SampleCollector(self.module)
        result = collector.run(failing_env)
        violations = check_invariants(self.invariants, collector.samples)
        return Localization(failure=result.failure, violations=violations)
