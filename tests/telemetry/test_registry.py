"""The Telemetry registry: metrics-by-name, spans, events, scoping."""

import time

from repro import telemetry
from repro.telemetry import MemorySink, NullSink, Telemetry


class TestMetricAccessors:
    def test_counter_created_once(self):
        tel = Telemetry()
        tel.counter("a").add(1)
        tel.counter("a").add(2)
        assert tel.counter("a").value == 3

    def test_count_convenience(self):
        tel = Telemetry()
        tel.count("hits")
        tel.count("hits", 9)
        assert tel.counter("hits").value == 10

    def test_snapshot_is_plain_data(self):
        tel = Telemetry()
        tel.count("c", 5)
        tel.gauge("g").set(1.5)
        tel.histogram("h").record(3)
        snap = tel.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_reset_clears_metrics(self):
        tel = Telemetry()
        tel.count("c")
        tel.reset()
        assert tel.snapshot()["counters"] == {}


class TestSpans:
    def test_span_measures_time(self):
        tel = Telemetry()
        with tel.span("work") as sp:
            time.sleep(0.01)
        assert sp.seconds >= 0.005
        hist = tel.histogram("span.work")
        assert hist.count == 1 and hist.total >= 0.005

    def test_span_nesting_depth_and_parent(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        with tel.span("outer"):
            with tel.span("middle"):
                with tel.span("inner"):
                    pass
        names = [e["name"] for e in sink.events]
        # spans emit at close: innermost first
        assert names == ["inner", "middle", "outer"]
        by_name = {e["name"]: e for e in sink.events}
        assert by_name["inner"]["depth"] == 3
        assert by_name["inner"]["parent"] == "middle"
        assert by_name["middle"]["parent"] == "outer"
        assert by_name["outer"]["depth"] == 1
        assert by_name["outer"]["parent"] is None

    def test_sibling_spans_share_depth(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        with tel.span("a"):
            with tel.span("b1"):
                pass
            with tel.span("b2"):
                pass
        by_name = {e["name"]: e for e in sink.events}
        assert by_name["b1"]["depth"] == by_name["b2"]["depth"] == 2
        assert by_name["b1"]["parent"] == by_name["b2"]["parent"] == "a"

    def test_span_attrs_and_error_flag(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        try:
            with tel.span("s", iteration=3):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (event,) = sink.events
        assert event["attrs"] == {"iteration": 3}
        assert event["error"] is True
        # the stack unwound despite the exception
        with tel.span("after"):
            pass
        assert sink.events[-1]["depth"] == 1

    def test_span_histogram_recorded_even_with_null_sink(self):
        tel = Telemetry()          # null sink
        with tel.span("quiet"):
            pass
        assert tel.histogram("span.quiet").count == 1


class TestEvents:
    def test_event_carries_fields_seq_ts(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        tel.event("ring_wrap", bytes=128)
        (event,) = sink.events
        assert event["type"] == "event"
        assert event["attrs"] == {"bytes": 128}
        assert event["seq"] == 1 and event["ts"] >= 0

    def test_seq_is_monotonic(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        for _ in range(5):
            tel.event("tick")
        assert [e["seq"] for e in sink.events] == [1, 2, 3, 4, 5]

    def test_null_sink_drops_everything(self):
        tel = Telemetry()
        assert not tel.enabled
        tel.event("dropped", x=1)       # no error, no storage
        assert isinstance(tel.sink, NullSink)

    def test_emit_snapshot_event(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        tel.count("c", 2)
        tel.emit_snapshot()
        (event,) = sink.events
        assert event["type"] == "snapshot"
        assert event["metrics"]["counters"] == {"c": 2}


class TestCurrentRegistry:
    def test_scoped_swaps_and_restores(self):
        outer = telemetry.get()
        fresh = Telemetry()
        with telemetry.scoped(fresh):
            assert telemetry.get() is fresh
            telemetry.count("scoped.only")
        assert telemetry.get() is outer
        assert fresh.counter("scoped.only").value == 1

    def test_passthroughs_follow_current(self):
        fresh = Telemetry(MemorySink())
        with telemetry.scoped(fresh):
            with telemetry.span("via-module"):
                pass
            telemetry.event("e")
            telemetry.gauge("g").set(2)
            telemetry.histogram("h").record(1)
        assert fresh.histogram("span.via-module").count == 1
        assert len(fresh.sink.events) == 2
        assert fresh.gauge("g").value == 2

    def test_scoped_restores_on_exception(self):
        outer = telemetry.get()
        try:
            with telemetry.scoped(Telemetry()):
                raise ValueError
        except ValueError:
            pass
        assert telemetry.get() is outer
