"""Chrome/Perfetto trace-event JSON export of a telemetry stream.

Renders a (possibly merged, multi-process) telemetry event stream as
the Trace Event Format that ``chrome://tracing`` and
https://ui.perfetto.dev open directly:

* every closed **span** becomes one complete (``"ph": "X"``) event —
  spans are emitted at close carrying their duration, so the start is
  ``ts - dur`` — on the track of the process that ran it (one ``pid``
  track per worker, which is what makes the schedulers' load balance
  visible at a glance);
* every point **event** (steal tokens served, subspace splits, shard
  cancellations, solver-cache hits, ring wraps, ...) becomes an instant
  (``"ph": "i"``) on its worker's track; and
* each distinct pid gets a ``process_name`` metadata record.

Cross-process comparability comes from the registries themselves:
worker clocks are aligned to the parent timeline at handoff (see
:mod:`.context`), so this module just converts seconds to integer
microseconds and sorts.  Span identity (``trace_id``/``span_id``/
``parent_id``) rides in ``args`` for tooling that reconstructs the
causal tree.

:func:`validate_trace` is the schema contract the CI artifact and the
tests pin: required keys per phase, non-negative monotone timestamps,
non-negative durations, and a named track per pid.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["trace_events", "build_trace", "write_trace",
           "validate_trace"]

#: event fields copied into ``args`` when present on a span event
_SPAN_IDENTITY = ("trace_id", "span_id", "parent_id", "depth")


def _micros(seconds: float) -> int:
    return max(int(round(seconds * 1_000_000)), 0)


def trace_events(events: Sequence[Dict]) -> List[Dict]:
    """Convert telemetry events to trace-event dicts, sorted by ``ts``.

    Snapshot events carry no timeline information and are dropped.
    Events from old logs without a ``pid`` all land on track 0.
    """
    out: List[Dict] = []
    pids = []
    for event in events:
        kind = event.get("type")
        pid = int(event.get("pid", 0))
        if pid not in pids:
            pids.append(pid)
        ts = float(event.get("ts", 0.0))
        if kind == "span":
            dur = float(event.get("dur_s", 0.0))
            args = dict(event.get("attrs") or {})
            for field in _SPAN_IDENTITY:
                if event.get(field) is not None:
                    args[field] = event[field]
            if event.get("error"):
                args["error"] = True
            out.append({
                "name": event.get("name", "?"),
                "cat": "span",
                "ph": "X",
                "ts": _micros(ts - dur),
                "dur": _micros(dur),
                "pid": pid,
                "tid": pid,
                "args": args,
            })
        elif kind == "event":
            out.append({
                "name": event.get("name", "?"),
                "cat": "instant",
                "ph": "i",
                "s": "t",
                "ts": _micros(ts),
                "pid": pid,
                "tid": pid,
                "args": dict(event.get("attrs") or {}),
            })
    out.sort(key=lambda e: (e["ts"], e.get("dur", 0)))
    meta = [{
        "name": "process_name",
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": pid,
        "args": {"name": f"pid {pid}"},
    } for pid in sorted(pids)]
    return meta + out


def build_trace(events: Sequence[Dict]) -> Dict:
    """The full trace-event JSON document for a telemetry stream."""
    trace_ids = sorted({e["trace_id"] for e in events
                        if e.get("trace_id")})
    doc = {
        "traceEvents": trace_events(events),
        "displayTimeUnit": "ms",
    }
    if trace_ids:
        doc["otherData"] = {"trace_ids": trace_ids}
    return doc


def write_trace(events: Sequence[Dict],
                path: Union[str, pathlib.Path]) -> int:
    """Write the trace-event JSON for ``events``; returns event count."""
    doc = build_trace(events)
    pathlib.Path(path).write_text(json.dumps(doc) + "\n",
                                  encoding="utf-8")
    return len(doc["traceEvents"])


#: keys every exported record must carry, per phase
_REQUIRED = {"name", "ph", "ts", "pid", "tid"}


def validate_trace(doc: Dict) -> List[str]:
    """Schema check for an exported document; returns the problems.

    An empty list means the document satisfies the contract pinned by
    the CI artifact check: ``traceEvents`` present, every record has
    the required keys, ``X`` records have non-negative ``dur``,
    timestamps are non-negative and monotone in stream order (metadata
    records excepted), and every pid referenced has a ``process_name``
    track record.
    """
    problems: List[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document has no traceEvents array"]
    records = doc["traceEvents"]
    if not isinstance(records, list):
        return ["traceEvents is not a list"]
    named_pids = set()
    seen_pids = set()
    last_ts: Optional[int] = None
    for index, record in enumerate(records):
        missing = _REQUIRED - set(record)
        if missing:
            problems.append(f"record {index} missing {sorted(missing)}")
            continue
        ph = record["ph"]
        ts = record["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"record {index} has bad ts {ts!r}")
            continue
        seen_pids.add(record["pid"])
        if ph == "M":
            if record["name"] == "process_name":
                named_pids.add(record["pid"])
            continue
        if ph == "X":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"record {index} has bad dur {dur!r}")
        if last_ts is not None and ts < last_ts:
            problems.append(f"record {index} ts {ts} < previous {last_ts}")
        last_ts = ts
    for pid in sorted(seen_pids - named_pids):
        problems.append(f"pid {pid} has no process_name track")
    return problems
