"""Sinks: JSONL round-trip, memory buffering, null-sink overhead."""

import json
import time

import pytest

from repro.telemetry import (JsonlSink, MemorySink, NullSink, TeeSink,
                             Telemetry, read_jsonl)


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tel = Telemetry(JsonlSink(path))
        with tel.span("phase", iteration=1):
            tel.event("inner", n=3)
        tel.count("c", 4)
        tel.close()      # emits the final snapshot and flushes

        events = read_jsonl(path)
        assert [e["type"] for e in events] == ["event", "span", "snapshot"]
        assert events[0]["attrs"] == {"n": 3}
        assert events[1]["name"] == "phase"
        assert events[1]["attrs"] == {"iteration": 1}
        assert events[2]["metrics"]["counters"]["c"] == 4

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tel = Telemetry(JsonlSink(path))
        for i in range(3):
            tel.event("tick", i=i)
        tel.sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)     # every line parses standalone

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.close()
        sink.close()             # idempotent
        with pytest.raises(ValueError):
            sink.emit({"a": 1})

    def test_non_serializable_values_stringified(self, tmp_path):
        path = tmp_path / "x.jsonl"
        sink = JsonlSink(path)
        sink.emit({"obj": object()})
        sink.close()
        (event,) = read_jsonl(path)
        assert "object" in event["obj"]

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "x.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"a": 1})
        with pytest.raises(ValueError):
            sink.emit({"b": 2})
        assert read_jsonl(path) == [{"a": 1}]

    def test_flush_makes_lines_visible_before_close(self, tmp_path):
        path = tmp_path / "x.jsonl"
        sink = JsonlSink(path)
        sink.emit({"a": 1})
        sink.flush()
        assert read_jsonl(path) == [{"a": 1}]   # readable while open
        sink.close()


class TestTornTail:
    def test_torn_trailing_line_skipped_with_warning(self, tmp_path,
                                                     caplog):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"c": tru')
        with caplog.at_level("WARNING", logger="repro.telemetry.sinks"):
            events = read_jsonl(path)
        assert events == [{"a": 1}, {"b": 2}]
        assert any("torn" in rec.message for rec in caplog.records)

    def test_torn_tail_counted(self, tmp_path):
        from repro import telemetry

        path = tmp_path / "torn.jsonl"
        path.write_text('{"a": 1}\n{"half')
        before = telemetry.counter("telemetry.read.torn_lines").value
        read_jsonl(path)
        after = telemetry.counter("telemetry.read.torn_lines").value
        assert after == before + 1

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"a": 1}\nnot json\n{"b": 2}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)

    def test_trailing_newline_only_is_clean(self, tmp_path):
        path = tmp_path / "ok.jsonl"
        path.write_text('{"a": 1}\n')
        assert read_jsonl(path) == [{"a": 1}]


class TestTeeSink:
    def test_fans_out_to_all_children(self, tmp_path):
        mem = MemorySink()
        path = tmp_path / "t.jsonl"
        jsonl = JsonlSink(path)
        tee = TeeSink(jsonl, mem)
        tee.emit({"a": 1})
        tee.close()
        assert mem.events == [{"a": 1}]
        assert read_jsonl(path) == [{"a": 1}]

    def test_enabled_iff_any_child_enabled(self):
        assert TeeSink(MemorySink(), NullSink()).enabled
        assert not TeeSink(NullSink(), NullSink()).enabled

    def test_registry_through_tee(self):
        mem_a, mem_b = MemorySink(), MemorySink()
        tel = Telemetry(TeeSink(mem_a, mem_b))
        with tel.span("s"):
            pass
        assert len(mem_a.spans()) == 1
        assert mem_a.events == mem_b.events


class TestMemorySink:
    def test_filters(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        with tel.span("s"):
            pass
        tel.event("e")
        assert len(sink.spans()) == 1
        assert sink.spans("s")[0]["name"] == "s"
        assert sink.named("e")[0]["type"] == "event"
        sink.clear()
        assert sink.events == []


class TestDisabledOverhead:
    def test_null_sink_skips_event_construction(self):
        tel = Telemetry()
        emitted = []
        tel.sink.emit = lambda e: emitted.append(e)  # would record if called
        tel.event("x", big=list(range(100)))
        assert emitted == []     # short-circuited before emit

    def test_disabled_span_cost_is_microseconds(self):
        """Spans with the null sink must stay cheap enough to leave in
        production paths: budget 50µs/span, ~25x the observed cost."""
        tel = Telemetry()
        n = 2000
        started = time.perf_counter()
        for _ in range(n):
            with tel.span("hot"):
                pass
        per_span = (time.perf_counter() - started) / n
        assert per_span < 50e-6

    def test_null_sink_is_default(self):
        assert isinstance(Telemetry().sink, NullSink)
