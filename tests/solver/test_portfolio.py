"""Portfolio racing: N-invariance, commit rules, exactly-once charging.

The portfolio's contract is that racing N strategy backends returns
byte-identical answers to the reference backend alone — the only
sanctioned divergence is an unsat *rescue* (a variant proving unsat
where the reference would have stalled: strictly fewer timeouts, same
verdict semantics).  These tests pin the commit rules with stub
backends driven through ``race()`` directly, and the invariance with
property tests across N.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.errors import SearchCancelled, SolverTimeout, UnsatError
from repro.solver import terms as T
from repro.solver.backend import (BACKEND_ORDER, ReferenceBackend,
                                  StagedBackend, make_backends)
from repro.solver.budget import Budget
from repro.solver.evaluator import tv_eval
from repro.solver.budget import UnlimitedBudget
from repro.solver.portfolio import RaceBudget, race
from repro.solver.solver import Solver


@pytest.fixture(autouse=True)
def fresh_terms():
    with T.term_scope():
        yield


@pytest.fixture
def tel():
    registry = telemetry.Telemetry()
    with telemetry.scoped(registry):
        yield registry


_byte = st.integers(0, 255)


@st.composite
def small_constraints(draw):
    """Random constraints over two byte vars (brute-forceable)."""
    a, b = T.var("p0"), T.var("p1")
    out = []
    for _ in range(draw(st.integers(1, 4))):
        op = draw(st.sampled_from(["eq", "ne", "ult", "ule", "ugt"]))
        shape = draw(st.integers(0, 2))
        if shape == 0:
            lhs = a
        elif shape == 1:
            lhs = T.binop(draw(st.sampled_from(["add", "xor", "and"])),
                          a, b, 8)
        else:
            lhs = T.binop("add", b, T.const(draw(_byte)), 8)
        out.append(T.cmp(op, lhs, T.const(draw(_byte)), 8))
    return out


def _outcome(solver, constraints):
    try:
        return ("sat", solver.solve(constraints).assignment)
    except UnsatError:
        return ("unsat", None)
    except SolverTimeout:
        return ("timeout", None)


class TestMakeBackends:
    def test_reference_first_and_capped(self):
        assert [type(b) for b in make_backends(1)] == [ReferenceBackend]
        assert type(make_backends(4)[3]) is StagedBackend
        assert len(make_backends(99)) == len(BACKEND_ORDER)

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            make_backends(0)


class TestPortfolioInvariance:
    @settings(max_examples=40, deadline=None)
    @given(small_constraints())
    def test_models_identical_across_widths(self, constraints):
        reference = _outcome(Solver(), constraints)
        for width in (2, 4):
            assert _outcome(Solver(portfolio=width),
                            constraints) == reference

    def test_every_backend_complete_on_unsat(self):
        a = T.var("a")
        cs = [T.cmp("eq", a, T.const(1), 8),
              T.cmp("eq", a, T.const(2), 8)]
        for backend in make_backends(4):
            with pytest.raises(UnsatError):
                backend.search(cs, Budget(10_000))

    def test_every_backend_model_satisfies(self):
        cs = [T.cmp("ugt", T.var("a"), T.const(200), 8),
              T.cmp("eq", T.binop("xor", T.var("a"), T.var("b"), 8),
                    T.const(0xFF), 8)]
        for backend in make_backends(4):
            model, _snapshot = backend.search(cs, Budget(100_000))
            for c in cs:
                assert tv_eval(T.bool_term(c), model.assignment,
                               UnlimitedBudget()) == 1


class _StubUnsat:
    """Variant that proves unsat after a fixed spend.

    An optional ``gate`` event delays the proof until a cooperating
    backend has finished, making race orderings deterministic in tests.
    """

    name = "stub-unsat"

    def __init__(self, spend=7, gate=None):
        self.spend = spend
        self.gate = gate

    def search(self, constraints, budget, hints=None, retained=None):
        if self.gate is not None:
            self.gate.wait(timeout=5)
        budget.charge(self.spend)
        raise UnsatError("stub proof")


class _StubHang:
    """Reference that spins until cancelled (or its window ends)."""

    name = "stub-hang"

    def __init__(self):
        self.cancelled = False

    def search(self, constraints, budget, hints=None, retained=None):
        try:
            while True:
                budget.charge(1)
        except SearchCancelled:
            self.cancelled = True
            raise


class _StubTimeout:
    name = "stub-timeout"

    def __init__(self, done=None):
        self.done = done

    def search(self, constraints, budget, hints=None, retained=None):
        try:
            budget.charge(budget.remaining() + 1)
        finally:
            if self.done is not None:
                self.done.set()
        raise AssertionError("window should have tripped")


class TestRaceCommitRules:
    def test_variant_unsat_cancels_reference(self, tel):
        reference = _StubHang()
        budget = Budget(1_000_000)
        with pytest.raises(UnsatError):
            race([reference, _StubUnsat(spend=7)], [], budget)
        assert reference.cancelled
        # the caller is charged exactly the winner's spend, not the sum
        assert budget.spent == 7
        snap = tel.snapshot()["counters"]
        assert snap["solver.portfolio.races"] == 1
        assert snap["solver.portfolio.wins.stub-unsat"] == 1
        assert snap["solver.portfolio.cancelled"] == 1

    def test_unsat_rescue_counted_on_reference_timeout(self, tel):
        import threading
        budget = Budget(50)
        # gate the variant's proof on the reference's timeout so the
        # rescue path (not the cancel path) is exercised deterministically
        ref_done = threading.Event()
        with pytest.raises(UnsatError):
            race([_StubTimeout(done=ref_done),
                  _StubUnsat(spend=7, gate=ref_done)], [], budget)
        snap = tel.snapshot()["counters"]
        assert snap["solver.portfolio.rescues"] == 1
        assert budget.spent == 7

    def test_all_timeout_charges_reference_spend(self, tel):
        budget = Budget(50)
        with pytest.raises(SolverTimeout):
            race([_StubTimeout(), _StubTimeout()], [], budget)
        snap = tel.snapshot()["counters"]
        assert "solver.portfolio.rescues" not in snap

    def test_race_budget_cancel_trips_on_charge(self):
        import threading
        cancel = threading.Event()
        racer = RaceBudget(100, "t", cancel)
        racer.charge(1)
        cancel.set()
        with pytest.raises(SearchCancelled):
            racer.charge(1)


class TestQueryAccounting:
    def test_portfolio_query_counted_once(self, tel):
        cs = [T.cmp("eq", T.var("a"), T.const(3), 8)]
        Solver(portfolio=4).solve(cs)
        snap = tel.snapshot()["counters"]
        assert snap["solver.queries.solve"] == 1
        assert tel.snapshot()["histograms"][
            "solver.work_per_query"]["count"] == 1

    def test_cancelled_outcome_counted_once(self, tel):
        # drive _metered's cancelled branch directly: a cancellation is
        # charged to solver.cancelled AND the query count exactly once
        from repro.solver.solver import _metered
        budget = Budget(100)
        with pytest.raises(SearchCancelled):
            with _metered("solve", budget):
                raise SearchCancelled()
        snap = tel.snapshot()["counters"]
        assert snap["solver.cancelled"] == 1
        assert snap["solver.queries.solve"] == 1
