"""Program-level tests of the mini-SQL engine's components.

These drive the *guest* code through the interpreter — the engine's
tokenizer, keyword matcher and symbol table are programs, and their
behaviour (case folding, hashing, flag handling) is what the SQLite
bugs and the 'sEleCT' accuracy result depend on.
"""

import pytest

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.workloads.sqlite import _build_engine


@pytest.fixture(scope="module")
def engine():
    return _build_engine("7be932d")


def run_sql(engine, *lines, quantum=50):
    text = ("\n".join(lines) + "\n").encode() + b"\x00"
    return Interpreter(engine, Environment({"sql": text},
                                           quantum=quantum)).run()


class TestTokenizer:
    def test_benign_query_runs_clean(self, engine):
        result = run_sql(engine, "select a b from t")
        assert result.failure is None

    def test_keywords_case_insensitive(self, engine):
        for variant in ("SELECT x y", "Select x y", "sElEcT x y"):
            result = run_sql(engine, variant)
            assert result.failure is None
            # the select path executes parse_select + the VM
            assert result.instr_count > 400, variant

    def test_non_select_lines_skipped_cheaply(self, engine):
        select = run_sql(engine, "select a b")
        other = run_sql(engine, "zzzzzz a b")
        assert other.instr_count < select.instr_count

    def test_empty_input_terminates(self, engine):
        result = run_sql(engine)
        assert result.failure is None


class TestSymbolTable:
    def _table_bytes(self, engine, *lines):
        interp = Interpreter(engine, Environment(
            {"sql": ("\n".join(lines) + "\n").encode() + b"\x00"}))
        interp.run()
        obj = next(o for o in interp.memory.objects()
                   if o.name == "sym_table")
        return bytes(obj.data)

    def test_identifiers_registered(self, engine):
        table = self._table_bytes(engine, "select alpha beta")
        assert any(table)  # hashes landed somewhere

    def test_same_identifier_same_slot(self, engine):
        one = self._table_bytes(engine, "select zig")
        two = self._table_bytes(engine, "select zig zig")
        assert one == two

    def test_case_folded_identifiers_collide(self, engine):
        lower = self._table_bytes(engine, "select abc")
        upper = self._table_bytes(engine, "select ABC")
        assert lower == upper  # folding happens before hashing


class TestDotCommands:
    def _flags(self, engine, *lines):
        interp = Interpreter(engine, Environment(
            {"sql": ("\n".join(lines) + "\n").encode() + b"\x00"}))
        result = interp.run()
        flags = {}
        for name in ("stats_flag", "eqp_flag", "eqp_stmt"):
            obj = next(o for o in interp.memory.objects()
                       if o.name == name)
            flags[name] = int.from_bytes(bytes(obj.data), "little")
        return result, flags

    def test_stats_sets_flag(self, engine):
        _result, flags = self._flags(engine, ".stats")
        assert flags["stats_flag"] == 1 and flags["eqp_flag"] == 0

    def test_eqp_clears_statement_pointer(self, engine):
        _result, flags = self._flags(engine, ".eqp")
        assert flags["eqp_flag"] == 1 and flags["eqp_stmt"] == 0

    def test_stats_alone_is_safe(self, engine):
        result, _ = self._flags(engine, ".stats", "select a b")
        assert result.failure is None

    def test_both_flags_crash_on_next_select(self, engine):
        result = run_sql(engine, ".eqp", ".stats", "select a b")
        assert result.failure is not None
        assert result.failure.point.func == "finish_query"


class TestSubqueryBookkeeping:
    def test_flat_query_balances(self):
        engine = _build_engine("787fa71")
        result = run_sql(engine, "select a ( inner )")
        assert result.failure is None

    def test_nested_subquery_trips_assert(self):
        engine = _build_engine("787fa71")
        result = run_sql(engine, "select a ( ( inner ) )")
        assert result.failure is not None
        assert result.failure.kind.value == "assertion-failure"

    def test_sibling_subqueries_fine(self):
        engine = _build_engine("787fa71")
        result = run_sql(engine, "select a ( x ) ( y )")
        assert result.failure is None


class TestOrCursors:
    def test_single_or_fine(self):
        engine = _build_engine("4e8e485")
        result = run_sql(engine, "select a from t where x or y")
        assert result.failure is None

    def test_second_or_dereferences_null(self):
        engine = _build_engine("4e8e485")
        result = run_sql(engine, "select a from t where x or y or z")
        assert result.failure is not None
        assert result.failure.kind.value == "null-pointer-dereference"
