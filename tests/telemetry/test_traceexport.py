"""Chrome/Perfetto trace-event export: conversion, schema, end to end."""

import json

from repro.telemetry import (MemorySink, Telemetry, build_trace,
                             validate_trace, write_trace)
from repro.telemetry.traceexport import trace_events


def _instrumented_run():
    sink = MemorySink()
    tel = Telemetry(sink)
    with tel.span("outer", iteration=1):
        tel.event("tick", n=1)
        with tel.span("inner"):
            pass
    tel.emit_snapshot()
    return tel, sink.events


class TestConversion:
    def test_spans_become_complete_events(self):
        tel, events = _instrumented_run()
        records = trace_events(events)
        xs = [r for r in records if r["ph"] == "X"]
        assert {r["name"] for r in xs} == {"outer", "inner"}
        for r in xs:
            assert r["ts"] >= 0 and r["dur"] >= 0
            assert r["args"]["trace_id"] == tel.trace_id
        outer = next(r for r in xs if r["name"] == "outer")
        inner = next(r for r in xs if r["name"] == "inner")
        # start = close ts - dur: the outer span starts first
        assert outer["ts"] <= inner["ts"]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["iteration"] == 1

    def test_events_become_instants(self):
        _, events = _instrumented_run()
        instants = [r for r in trace_events(events) if r["ph"] == "i"]
        assert [r["name"] for r in instants] == ["tick"]
        assert instants[0]["args"] == {"n": 1}

    def test_snapshots_dropped_and_metadata_added(self):
        _, events = _instrumented_run()
        records = trace_events(events)
        assert not any(r["name"] == "telemetry.snapshot" for r in records)
        metas = [r for r in records if r["ph"] == "M"]
        assert len(metas) == 1           # one pid in-process
        assert metas[0]["name"] == "process_name"

    def test_one_track_per_pid(self):
        _, events = _instrumented_run()
        shifted = [dict(e, pid=e["pid"] + 1) for e in events]
        records = trace_events(events + shifted)
        metas = [r for r in records if r["ph"] == "M"]
        assert len(metas) == 2
        pids = {r["pid"] for r in records if r["ph"] != "M"}
        assert len(pids) == 2

    def test_records_sorted_by_ts(self):
        _, events = _instrumented_run()
        body = [r for r in trace_events(events) if r["ph"] != "M"]
        assert [r["ts"] for r in body] == sorted(r["ts"] for r in body)

    def test_error_span_flagged(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        try:
            with tel.span("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        (record,) = [r for r in trace_events(sink.events)
                     if r["ph"] == "X"]
        assert record["args"]["error"] is True


class TestValidate:
    def test_valid_document_passes(self):
        _, events = _instrumented_run()
        assert validate_trace(build_trace(events)) == []

    def test_missing_keys_reported(self):
        doc = {"traceEvents": [{"ph": "X", "ts": 0}]}
        problems = validate_trace(doc)
        assert any("missing" in p for p in problems)

    def test_negative_duration_reported(self):
        doc = {"traceEvents": [
            {"name": "process_name", "ph": "M", "ts": 0, "pid": 1,
             "tid": 1},
            {"name": "s", "ph": "X", "ts": 0, "dur": -1, "pid": 1,
             "tid": 1},
        ]}
        assert any("dur" in p for p in validate_trace(doc))

    def test_unnamed_pid_reported(self):
        doc = {"traceEvents": [
            {"name": "s", "ph": "X", "ts": 0, "dur": 1, "pid": 7,
             "tid": 7},
        ]}
        assert any("process_name" in p for p in validate_trace(doc))

    def test_out_of_order_ts_reported(self):
        doc = {"traceEvents": [
            {"name": "process_name", "ph": "M", "ts": 0, "pid": 1,
             "tid": 1},
            {"name": "a", "ph": "i", "s": "t", "ts": 5, "pid": 1,
             "tid": 1},
            {"name": "b", "ph": "i", "s": "t", "ts": 2, "pid": 1,
             "tid": 1},
        ]}
        assert any("<" in p for p in validate_trace(doc))

    def test_no_trace_events_key(self):
        assert validate_trace({}) == ["document has no traceEvents array"]


class TestWriteTrace:
    def test_write_and_reload(self, tmp_path):
        _, events = _instrumented_run()
        out = tmp_path / "trace.json"
        count = write_trace(events, out)
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == count
        assert validate_trace(doc) == []
        assert doc["otherData"]["trace_ids"]


class TestShardedTraceEndToEnd:
    """The acceptance scenario: a sharded steal run's exported trace."""

    def test_steal_run_trace_schema_and_linkage(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.json"
        assert main(["reproduce", "objdump-2018-6323",
                     "--mapping-loss", "0.085", "--shards", "2",
                     "--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        doc = json.loads(trace_path.read_text())
        assert validate_trace(doc) == []

        xs = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        pids = {r["pid"] for r in xs}
        assert len(pids) >= 2            # parent + at least one worker
        metas = {r["pid"] for r in doc["traceEvents"] if r["ph"] == "M"}
        assert pids <= metas             # every worker has a named track

        # every span shares the reconstruction's trace id
        trace_ids = {r["args"]["trace_id"] for r in xs
                     if "trace_id" in r.get("args", {})}
        assert len(trace_ids) == 1

        # shard spans link to a parent span from ANOTHER process
        by_id = {r["args"]["span_id"]: r for r in xs
                 if "span_id" in r.get("args", {})}
        cross = [r for r in xs
                 if r.get("args", {}).get("parent_id") in by_id
                 and by_id[r["args"]["parent_id"]]["pid"] != r["pid"]]
        assert cross, "no span linked across the process boundary"
        shard_spans = [r for r in xs if r["name"] == "parallel.shard_search"]
        assert shard_spans
        for r in shard_spans:
            parent = by_id[r["args"]["parent_id"]]
            assert parent["name"] == "symex.gap_shard_search"
            assert parent["pid"] != r["pid"]
            # aligned clocks: the shard span starts after its parent
            assert r["ts"] >= parent["ts"]
