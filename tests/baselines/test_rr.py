"""rr-style record/replay baseline."""

import pytest

from repro.baselines.rr import RRBaseline, RRRecording
from repro.errors import ReproError
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter


class TestRecordReplay:
    def test_replay_reproduces_failure(self, abort_module):
        rr = RRBaseline()
        recording = rr.record(abort_module, Environment({"stdin": b"\xff"}))
        assert recording.failure is not None
        assert rr.replay_matches(abort_module, recording)

    def test_replay_reproduces_benign_run(self, abort_module):
        rr = RRBaseline()
        recording = rr.record(abort_module, Environment({"stdin": b"\x01"}))
        assert recording.failure is None
        assert rr.replay_matches(abort_module, recording)

    def test_replay_is_bit_exact(self, call_module):
        rr = RRBaseline()
        env = Environment({"stdin": bytes([33])})
        recording = rr.record(call_module, env)
        result = rr.replay(call_module, recording)
        assert result.return_value == 66
        assert result.instr_count == recording.instr_count

    def test_replays_thread_schedules(self, spawn_module):
        rr = RRBaseline()
        recording = rr.record(spawn_module, Environment({}, quantum=3))
        replayed = rr.replay(spawn_module, recording)
        original = Interpreter(spawn_module,
                               Environment({}, quantum=3)).run()
        assert replayed.outputs == original.outputs

    def test_divergent_program_detected(self, abort_module):
        rr = RRBaseline()
        recording = rr.record(abort_module, Environment({"stdin": b"\xff"}))
        other = abort_module.clone()
        block = other.function("main").block("entry")
        block.instrs[0].stream = "other-stream"
        with pytest.raises(ReproError):
            rr.replay(other, recording)

    def test_log_size_scales_with_events(self, abort_module):
        rr = RRBaseline()
        small = rr.record(abort_module, Environment({"stdin": b"\x01"}))
        assert small.event_count >= 1
        assert small.log_bytes() > 0

    def test_clock_values_replayed(self):
        from repro.ir.builder import ModuleBuilder

        b = ModuleBuilder("clocky")
        f = b.function("main", [])
        f.block("entry")
        t = f.input("clock", 8)
        f.output("stdout", t, 8)
        f.ret(0)
        module = b.build()
        rr = RRBaseline()
        env = Environment({}, clock_start=777, clock_step=1)
        recording = rr.record(module, env)
        replayed = rr.replay(module, recording)
        assert replayed.outputs["stdout"] == (777).to_bytes(8, "little")
