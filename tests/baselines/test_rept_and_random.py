"""REPT reverse execution and the random-selection baseline."""

from collections import Counter

import pytest

from repro.baselines.random_selection import random_selection
from repro.baselines.rept import ReptAnalyzer
from repro.core.selection import select_key_values
from repro.interp.env import Environment
from repro.ir.builder import ModuleBuilder
from repro.solver import terms as T
from repro.symex.result import StallInfo
from repro.workloads import get_workload


class TestRept:
    def _failing_module(self, loop_iters=0):
        """Input-dependent values, an optional value-churn loop, abort."""
        b = ModuleBuilder("rept")
        b.global_("G", 64)
        f = b.function("main", [])
        f.block("entry")
        a = f.input("stdin", 1, dest="%a")
        f.add("%a", 5, dest="%x")
        f.mul("%x", 3, dest="%y")
        if loop_iters:
            f.const(0, dest="%i")
            f.jmp("churn")
            f.block("churn")
            done = f.cmp("uge", "%i", loop_iters)
            f.br(done, "fin", "body")
            f.block("body")
            g = f.global_addr("G")
            idx = f.and_("%i", 63)
            p = f.gep(g, idx, 1)
            f.store(p, "%i", 1)           # overwrites destroy history
            f.xor("%y", "%i", dest="%y")
            f.add("%i", 1, dest="%i")
            f.jmp("churn")
            f.block("fin")
            f.nop()
        f.abort("crash")
        return b.build()

    def test_requires_failing_run(self):
        b = ModuleBuilder("ok")
        f = b.function("main", [])
        f.block("entry")
        f.ret(0)
        with pytest.raises(ValueError):
            ReptAnalyzer().analyze(b.build(), Environment({}))

    def test_recovers_values_near_crash(self):
        module = self._failing_module()
        report = ReptAnalyzer().analyze(module,
                                        Environment({"stdin": b"\x07"}))
        assert report.total_defs > 0
        assert report.correct > 0

    def test_error_rate_in_unit_range(self):
        module = self._failing_module(loop_iters=30)
        report = ReptAnalyzer().analyze(module,
                                        Environment({"stdin": b"\x07"}))
        assert 0.0 <= report.error_rate <= 1.0
        assert report.correct + report.incorrect + report.unknown \
            == report.total_defs

    def test_longer_traces_recover_worse_or_equal(self):
        short = ReptAnalyzer().analyze(self._failing_module(5),
                                       Environment({"stdin": b"\x07"}))
        long_ = ReptAnalyzer().analyze(self._failing_module(200),
                                       Environment({"stdin": b"\x07"}))
        assert long_.error_rate >= short.error_rate - 0.05

    def test_works_on_real_workload(self):
        wl = get_workload("bash-108885")
        report = ReptAnalyzer().analyze(wl.fresh_module(),
                                        wl.failing_env(1))
        assert report.total_defs > 0


class TestRandomSelection:
    def _stall(self):
        T.clear_term_cache()
        from repro.ir.module import ProgramPoint

        arr = T.array("A", bytes(64))
        node = arr
        counts = Counter()
        for i in range(6):
            v = T.var(f"v{i}")
            v.prov = (ProgramPoint("f", "b", i), f"%v{i}", 1)
            counts[ProgramPoint("f", "b", i)] = 1
            node = T.store(node, v, T.const(1, 8))
        # extra recordable values in the graph (constraints, not chains):
        # the random pool is larger than ER's plan, so picks can differ
        constraints = []
        for i in range(8):
            w = T.var(f"w{i}")
            w.prov = (ProgramPoint("f", "c", i), f"%w{i}", 1)
            counts[ProgramPoint("f", "c", i)] = 1
            constraints.append(T.cmp("ult", w, T.const(200), 8))
        return StallInfo(constraints=constraints, stall_terms=[],
                         chains=[node], exec_counts=counts)

    def test_same_budget_as_er(self):
        stall = self._stall()
        er_plan = select_key_values(stall)
        rand_plan = random_selection(seed=1)(stall)
        assert rand_plan.total_cost >= er_plan.total_cost
        assert rand_plan.items

    def test_seed_determinism(self):
        stall = self._stall()
        a = random_selection(seed=5)(stall)
        b = random_selection(seed=5)(stall)
        assert a.items == b.items

    def test_different_seeds_differ_eventually(self):
        stall = self._stall()
        picks = {tuple(random_selection(seed=s)(stall).items)
                 for s in range(8)}
        assert len(picks) > 1

    def test_respects_already_recorded(self):
        stall = self._stall()
        all_units = {("f", f"%v{i}") for i in range(5)}
        plan = random_selection(seed=3)(stall, frozenset(all_units))
        assert all((i.point.func, i.register) not in all_units
                   for i in plan.items)
