"""Cross-cutting property tests: the library's core guarantees.

1. **Replay soundness**: for any program and failing input, a completed
   reconstruction's generated test case reproduces the same failure.
2. **Interp/symex agreement**: shepherded replay of a benign trace is
   consistent — the model's streams drive the program down the same
   path with the same outputs.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ExecutionReconstructor, ProductionSite
from repro.errors import ReconstructionError
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder
from repro.symex.engine import ShepherdedSymex
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.ringbuffer import RingBuffer

_SETTINGS = dict(max_examples=20, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@st.composite
def arithmetic_programs(draw):
    """Random branching programs over 3 input bytes, ending in an assert.

    The assert compares a random expression with a random constant, so a
    fraction of inputs fail — exactly the 'programmatically detectable
    failure' class ER targets.
    """
    b = ModuleBuilder("prop")
    b.global_("G", 32)
    f = b.function("main", [])
    f.block("entry")
    regs = []
    for i in range(3):
        regs.append(f.input("stdin", 1, dest=f"%in{i}"))
    n_blocks = draw(st.integers(1, 3))
    for block_index in range(n_blocks):
        op = draw(st.sampled_from(["add", "sub", "xor", "and", "or"]))
        lhs = draw(st.sampled_from(regs))
        rhs = draw(st.one_of(st.sampled_from(regs),
                             st.integers(0, 255)))
        dest = f.binop(op, lhs, rhs, width=8)
        regs.append(dest)
        cond = f.cmp(draw(st.sampled_from(["ult", "eq", "uge"])),
                     dest, draw(st.integers(0, 255)), width=8)
        then_lbl, else_lbl = f"t{block_index}", f"e{block_index}"
        join_lbl = f"j{block_index}"
        f.br(cond, then_lbl, else_lbl)
        f.block(then_lbl)
        # conditionally-defined value: used only inside this branch
        extra = f.add(dest, draw(st.integers(0, 50)), width=8)
        f.output("debug", extra, 1)
        f.jmp(join_lbl)
        f.block(else_lbl)
        f.jmp(join_lbl)
        f.block(join_lbl)
        f.nop()
    check = f.cmp("ne", draw(st.sampled_from(regs)),
                  draw(st.integers(0, 255)), width=8)
    f.assert_(check, "property assert")
    f.output("stdout", regs[-1], 1)
    f.ret(0)
    return b.build()


def _find_failing_input(module, tries=300):
    import random

    rng = random.Random(1234)
    for _ in range(tries):
        data = bytes(rng.randint(0, 255) for _ in range(3))
        result = Interpreter(module, Environment({"stdin": data})).run()
        if result.failure is not None:
            return data
    return None


class TestReplaySoundness:
    @settings(**_SETTINGS)
    @given(arithmetic_programs())
    def test_reconstruction_replays(self, module):
        failing = _find_failing_input(module)
        if failing is None:
            return  # no failing input exists for this program
        er = ExecutionReconstructor(module)
        report = er.reconstruct(ProductionSite(
            lambda occ: Environment({"stdin": failing})))
        assert report.success and report.verified
        # replay on a pristine clone as well
        env = Environment(dict(report.test_case.streams))
        rerun = Interpreter(module.clone(), env).run()
        assert rerun.failure is not None

    @settings(**_SETTINGS)
    @given(arithmetic_programs())
    def test_benign_trace_model_reproduces_outputs(self, module):
        import random

        rng = random.Random(99)
        data = None
        for _ in range(200):
            candidate = bytes(rng.randint(0, 255) for _ in range(3))
            run = Interpreter(module,
                              Environment({"stdin": candidate})).run()
            if run.failure is None:
                data = candidate
                break
        if data is None:
            return
        encoder = PTEncoder(RingBuffer())
        original = Interpreter(module, Environment({"stdin": data}),
                               tracer=encoder).run()
        trace = decode(encoder.buffer)
        res = ShepherdedSymex(module, trace, None).run()
        assert res.completed
        generated = res.model.streams().get("stdin", b"")
        rerun = Interpreter(module,
                            Environment({"stdin": generated})).run()
        # same control flow => same branch count and failure-freedom
        assert rerun.failure is None
        assert rerun.branch_count == original.branch_count
