"""Figure 1: prior techniques on the efficiency/effectiveness/accuracy
spectra.

The figure is qualitative in the paper; here it is generated from a
registry of technique properties (each scored 0..10 per axis with the
usability boundary at 5), so the motivating claim — *no prior system
clears all three boundaries; ER does* — is checkable programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .formatting import render_table

#: position of the usability boundary on every axis
BOUNDARY = 5


@dataclass(frozen=True)
class Technique:
    name: str
    #: (min, max) position per axis; a range models configurable systems
    efficiency: Tuple[int, int]
    effectiveness: Tuple[int, int]
    accuracy: Tuple[int, int]
    note: str = ""

    def clears(self, axis: str) -> bool:
        """Some configuration of the technique clears this axis."""
        lo, hi = getattr(self, axis)
        return hi > BOUNDARY

    def clears_all(self) -> bool:
        """One *single* configuration clears every axis.

        Ranged systems (hybrid RR, BugRedux) trade the axes against each
        other — their efficient configurations are the inaccurate ones —
        so simultaneous clearance requires the conservative (low) end of
        each range to sit past the boundary.
        """
        return all(getattr(self, a)[0] > BOUNDARY for a in
                   ("efficiency", "effectiveness", "accuracy"))


#: the systems §2 places on the spectra
TECHNIQUES: List[Technique] = [
    Technique("Full RR", (0, 1), (9, 10), (9, 10),
              "records everything; up to 2x overhead"),
    Technique("Efficient RR", (7, 8), (2, 3), (9, 10),
              "cannot replay data races"),
    Technique("Hybrid RR", (2, 7), (3, 8), (4, 8),
              "granularity-dependent (PRES/ODR)"),
    Technique("BugRedux", (1, 4), (2, 4), (6, 7),
              "call-sequence vs full tracing"),
    Technique("ESD", (9, 10), (2, 3), (6, 7),
              "purely offline; solver may time out"),
    Technique("RDE", (9, 10), (2, 4), (6, 7),
              "guides symbex with logs"),
    Technique("REPT", (8, 9), (3, 4), (1, 3),
              "inaccurate beyond 100K instructions"),
    Technique("POMP", (8, 9), (3, 4), (2, 4),
              "core-dump reverse execution"),
    Technique("ER", (8, 9), (7, 8), (6, 8),
              "this paper: clears every boundary"),
]


@dataclass
class Figure1Result:
    techniques: List[Technique]

    def usable(self, axis: str) -> List[str]:
        return [t.name for t in self.techniques if t.clears(axis)]

    def clears_all(self) -> List[str]:
        return [t.name for t in self.techniques if t.clears_all()]

    def render(self) -> str:
        headers = ["Technique", "Efficiency", "Effectiveness", "Accuracy",
                   "Clears all?", "Note"]

        def bar(span: Tuple[int, int]) -> str:
            lo, hi = span
            cells = ["·"] * 11
            for i in range(lo, hi + 1):
                cells[i] = "█"
            cells.insert(BOUNDARY + 1, "|")
            return "".join(cells)

        rows = [[t.name, bar(t.efficiency), bar(t.effectiveness),
                 bar(t.accuracy), "YES" if t.clears_all() else "no",
                 t.note] for t in self.techniques]
        legend = ("\n('|' is the usability boundary; a technique is usable "
                  "on an axis when its range crosses it)")
        return render_table(
            headers, rows,
            "Figure 1 — failure-reproduction property spectra") + legend


def run_figure1() -> Figure1Result:
    return Figure1Result(list(TECHNIQUES))
