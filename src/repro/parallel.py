"""Parallel batch reconstruction: many workloads, one merged report.

Reconstructions of distinct failures are embarrassingly parallel — each
one owns its module clone, production site, term space, and solver
cache — so the batch runner fans workloads out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Process (not thread)
workers sidestep the GIL: shepherded symbolic execution is pure Python
and CPU-bound.

Every worker runs under its own telemetry registry and ships back a
picklable :class:`BatchItem` — outcome summary, metric snapshot, and
(optionally) the structured event stream.  The parent merges the
snapshots with :func:`repro.telemetry.merge_snapshots` and can write a
single combined JSONL log (each event tagged with its workload) that
``repro stats`` renders like any single-run log.

``parallel=1`` degrades to a plain in-process loop — same code path,
same reports, no executor — which is also the serial baseline that
``repro bench`` compares against to measure the speedup.
"""

from __future__ import annotations

import json
import pathlib
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from . import telemetry
from .core import ExecutionReconstructor, ProductionSite
from .workloads import get_workload, workload_names

__all__ = ["BatchItem", "BatchResult", "run_batch", "write_merged_jsonl"]


@dataclass
class BatchItem:
    """One workload's reconstruction outcome, picklable across processes."""

    workload: str
    success: bool = False
    verified: bool = False
    occurrences: int = 0
    unrelated_occurrences: int = 0
    wall_seconds: float = 0.0
    symex_modelled_seconds: float = 0.0
    recorded_bytes: int = 0
    solver_cache: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    #: this worker's full metric snapshot
    telemetry: Dict = field(default_factory=dict)
    #: structured event stream (only when events were requested)
    events: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "success": self.success,
            "verified": self.verified,
            "occurrences": self.occurrences,
            "unrelated_occurrences": self.unrelated_occurrences,
            "wall_seconds": round(self.wall_seconds, 4),
            "symex_modelled_seconds":
                round(self.symex_modelled_seconds, 4),
            "recorded_bytes": self.recorded_bytes,
            "solver_cache": self.solver_cache,
            "error": self.error,
        }


@dataclass
class BatchResult:
    """The merged outcome of one batch run."""

    items: List[BatchItem]
    parallelism: int
    wall_seconds: float
    #: all workers' metric snapshots folded into one
    telemetry: Dict = field(default_factory=dict)

    @property
    def succeeded(self) -> int:
        return sum(1 for i in self.items if i.success)

    @property
    def solver_cache_stats(self) -> Dict[str, float]:
        counters = self.telemetry.get("counters", {})
        hits = counters.get("solver.cache.hits", 0)
        misses = counters.get("solver.cache.misses", 0)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "model_probe_hits":
                counters.get("solver.cache.model_probe_hits", 0),
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }

    def to_dict(self) -> Dict:
        return {
            "parallelism": self.parallelism,
            "wall_seconds": round(self.wall_seconds, 4),
            "succeeded": self.succeeded,
            "total": len(self.items),
            "solver_cache": self.solver_cache_stats,
            "items": [item.to_dict() for item in self.items],
        }


def _reconstruct_one(name: str, capture_events: bool) -> BatchItem:
    """Worker body: one workload under a private telemetry registry.

    Runs in a pool process (or inline for ``parallel=1``); must only
    return picklable data, so the report's module/test-case objects are
    reduced to scalars here rather than shipped back.
    """
    sink = telemetry.MemorySink() if capture_events else None
    registry = telemetry.Telemetry(sink)
    item = BatchItem(workload=name)
    started = time.perf_counter()
    with telemetry.scoped(registry):
        try:
            workload = get_workload(name)
            reconstructor = ExecutionReconstructor(
                workload.fresh_module(),
                work_limit=workload.work_limit,
                max_occurrences=workload.max_occurrences)
            report = reconstructor.reconstruct(
                ProductionSite(workload.failing_env))
            item.success = report.success
            item.verified = report.verified
            item.occurrences = report.occurrences
            item.unrelated_occurrences = report.unrelated_occurrences
            item.symex_modelled_seconds = \
                report.total_symex_modelled_seconds
            item.recorded_bytes = report.total_recorded_bytes
        except Exception as exc:  # noqa: BLE001 — report, don't kill batch
            item.error = "".join(traceback.format_exception_only(
                type(exc), exc)).strip()
        if capture_events:
            registry.emit_snapshot()
    item.wall_seconds = time.perf_counter() - started
    item.telemetry = registry.snapshot()
    counters = item.telemetry.get("counters", {})
    hits = counters.get("solver.cache.hits", 0)
    misses = counters.get("solver.cache.misses", 0)
    item.solver_cache = {
        "hits": hits, "misses": misses,
        "hit_rate": round(hits / (hits + misses), 4)
        if hits + misses else 0.0,
    }
    if sink is not None:
        item.events = sink.events
    return item


def run_batch(names: Optional[Sequence[str]] = None, *,
              parallel: int = 1,
              capture_events: bool = False) -> BatchResult:
    """Reconstruct ``names`` (default: every workload), ``parallel``-wide.

    Results come back in input order regardless of completion order.  A
    workload that raises contributes a :class:`BatchItem` with ``error``
    set instead of aborting the batch.
    """
    names = list(names) if names is not None else workload_names()
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    started = time.perf_counter()
    if parallel == 1 or len(names) <= 1:
        items = [_reconstruct_one(name, capture_events) for name in names]
    else:
        workers = min(parallel, len(names))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            items = list(pool.map(_reconstruct_one, names,
                                  [capture_events] * len(names)))
    wall = time.perf_counter() - started
    merged = telemetry.merge_snapshots([item.telemetry for item in items])
    telemetry.count("parallel.batches")
    telemetry.count("parallel.workloads", len(items))
    return BatchResult(items=items, parallelism=parallel,
                       wall_seconds=wall, telemetry=merged)


def write_merged_jsonl(result: BatchResult,
                       path: Union[str, pathlib.Path]) -> int:
    """Write all workers' event streams as one combined JSONL log.

    Events keep their per-worker ``seq``/``ts`` and gain a ``workload``
    field; a final ``snapshot`` event carries the *merged* metrics so
    ``repro stats`` renders whole-batch counters.  Returns the number of
    lines written.
    """
    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        for item in result.items:
            for event in item.events:
                if event.get("type") == "snapshot":
                    continue      # superseded by the merged snapshot
                fh.write(json.dumps({**event, "workload": item.workload},
                                    default=str) + "\n")
                lines += 1
        fh.write(json.dumps({
            "type": "snapshot", "name": "telemetry.snapshot",
            "seq": lines + 1, "ts": round(result.wall_seconds, 6),
            "metrics": result.telemetry,
        }) + "\n")
    return lines + 1
