"""Random data-recording baseline (§5.2 'Key Data Value Selection
Effectiveness').

Records the *same number of bytes* as ER's key-data-value selection would,
but picks the values uniformly at random among all recordable nodes of
the constraint graph.  The paper reports that this strategy reproduces
only 1 of the 11 failures that need data recording; the ablation harness
(``repro.evaluation.random_cmp``) measures the same comparison here.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.constraint_graph import ConstraintGraph
from ..core.selection import (RecordingPlan, _unit_of,
                              select_key_values)
from ..symex.result import StallInfo


def random_selection(seed: Optional[int] = None):
    """A selection function choosing random recordable values.

    Returns a callable with the same signature as
    :func:`repro.core.selection.select_key_values`, suitable for
    ``ExecutionReconstructor(selection=...)``.
    """
    rng = random.Random(seed)

    def select(stall: StallInfo,
               already_recorded: frozenset = frozenset()) -> RecordingPlan:
        er_plan = select_key_values(stall, already_recorded)
        budget_bytes = max(er_plan.total_cost, 1)
        graph = ConstraintGraph.from_stall(stall)
        units = []
        seen = set()
        for node in graph.nodes:
            unit = _unit_of(node)
            if unit is not None and unit not in seen and \
                    (unit.point.func, unit.register) not in already_recorded:
                seen.add(unit)
                units.append(unit)
        rng.shuffle(units)
        chosen = []
        spent = 0
        for unit in units:
            if spent >= budget_bytes:
                break
            chosen.append(unit)
            spent += unit.cost(stall.exec_counts)
        return RecordingPlan(items=sorted(chosen),
                             bottleneck=er_plan.bottleneck,
                             graph_nodes=graph.node_count,
                             total_cost=spent)

    return select
