"""Fluent builder API for constructing IR modules from Python.

The workload programs (``repro.workloads``) are built with this API; the
textual parser (``repro.ir.parser``) offers the same expressiveness for
programs written as ``.eir`` text.

Example::

    b = ModuleBuilder("demo")
    b.global_("V", 1024)
    f = b.function("foo", ["a", "b"])
    f.block("entry")
    x = f.add("a", "b", width=32)
    cond = f.cmp("ult", x, 256)
    f.br(cond, "body", "exit")
    ...

Register management: every emitter returns the destination register name
(``%tmpN`` by default) so expressions compose naturally.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import IRError
from . import instructions as ins
from .instructions import Operand
from .module import BasicBlock, Function, Module


class FunctionBuilder:
    """Builds one function; obtained from :meth:`ModuleBuilder.function`."""

    def __init__(self, module: Module, name: str, params: Sequence[str]):
        self._func = Function(name, [self._reg(p) for p in params])
        module.add_function(self._func)
        self._current: Optional[BasicBlock] = None
        self._tmp = 0

    @property
    def func(self) -> Function:
        return self._func

    @staticmethod
    def _reg(name: str) -> str:
        return name if name.startswith("%") else "%" + name

    def fresh(self, hint: str = "tmp") -> str:
        self._tmp += 1
        return f"%{hint}{self._tmp}"

    def block(self, label: str) -> "FunctionBuilder":
        """Start a new basic block; subsequent emits go there."""
        self._current = self._func.add_block(label)
        return self

    def at(self, label: str) -> "FunctionBuilder":
        """Switch back to an existing block (to append more code)."""
        self._current = self._func.block(label)
        return self

    def emit(self, instr: ins.Instr) -> ins.Instr:
        if self._current is None:
            raise IRError("no current block; call .block(label) first")
        if self._current.terminator is not None:
            raise IRError(
                f"block {self._current.label!r} already has a terminator"
            )
        self._current.instrs.append(instr)
        return instr

    # -- value-producing emitters ------------------------------------

    def _dest(self, dest: Optional[str], hint: str) -> str:
        return self._reg(dest) if dest else self.fresh(hint)

    def const(self, value: int, dest: Optional[str] = None) -> str:
        dest = self._dest(dest, "c")
        self.emit(ins.Const(dest, value))
        return dest

    def _op(self, operand: Operand) -> Operand:
        if isinstance(operand, str):
            return self._reg(operand)
        return operand

    def binop(self, op: str, lhs: Operand, rhs: Operand, width: int = 64,
              dest: Optional[str] = None) -> str:
        dest = self._dest(dest, op)
        self.emit(ins.BinOp(dest, op, self._op(lhs), self._op(rhs), width))
        return dest

    def add(self, lhs, rhs, width=64, dest=None):
        return self.binop("add", lhs, rhs, width, dest)

    def sub(self, lhs, rhs, width=64, dest=None):
        return self.binop("sub", lhs, rhs, width, dest)

    def mul(self, lhs, rhs, width=64, dest=None):
        return self.binop("mul", lhs, rhs, width, dest)

    def and_(self, lhs, rhs, width=64, dest=None):
        return self.binop("and", lhs, rhs, width, dest)

    def or_(self, lhs, rhs, width=64, dest=None):
        return self.binop("or", lhs, rhs, width, dest)

    def xor(self, lhs, rhs, width=64, dest=None):
        return self.binop("xor", lhs, rhs, width, dest)

    def shl(self, lhs, rhs, width=64, dest=None):
        return self.binop("shl", lhs, rhs, width, dest)

    def lshr(self, lhs, rhs, width=64, dest=None):
        return self.binop("lshr", lhs, rhs, width, dest)

    def udiv(self, lhs, rhs, width=64, dest=None):
        return self.binop("udiv", lhs, rhs, width, dest)

    def urem(self, lhs, rhs, width=64, dest=None):
        return self.binop("urem", lhs, rhs, width, dest)

    def cmp(self, op: str, lhs: Operand, rhs: Operand, width: int = 64,
            dest: Optional[str] = None) -> str:
        dest = self._dest(dest, "cmp")
        self.emit(ins.Cmp(dest, op, self._op(lhs), self._op(rhs), width))
        return dest

    def select(self, cond, if_true, if_false, dest=None) -> str:
        dest = self._dest(dest, "sel")
        self.emit(ins.Select(dest, self._op(cond), self._op(if_true),
                             self._op(if_false)))
        return dest

    def trunc(self, value, width=32, dest=None) -> str:
        dest = self._dest(dest, "tr")
        self.emit(ins.Trunc(dest, self._op(value), width))
        return dest

    def sext(self, value, from_width=32, dest=None) -> str:
        dest = self._dest(dest, "sx")
        self.emit(ins.SExt(dest, self._op(value), from_width))
        return dest

    def global_addr(self, name: str, dest=None) -> str:
        dest = self._dest(dest, "g")
        self.emit(ins.GlobalAddr(dest, name))
        return dest

    def alloca(self, name: str, size: int, dest=None) -> str:
        dest = self._dest(dest, "fp")
        self.emit(ins.FrameAlloc(dest, name, size))
        return dest

    def malloc(self, size: Operand, dest=None) -> str:
        dest = self._dest(dest, "hp")
        self.emit(ins.HeapAlloc(dest, self._op(size)))
        return dest

    def free(self, addr: Operand) -> None:
        self.emit(ins.HeapFree(self._op(addr)))

    def gep(self, base, index, scale=1, dest=None) -> str:
        dest = self._dest(dest, "p")
        self.emit(ins.Gep(dest, self._op(base), self._op(index), scale))
        return dest

    def load(self, addr, size=8, dest=None) -> str:
        dest = self._dest(dest, "v")
        self.emit(ins.Load(dest, self._op(addr), size))
        return dest

    def store(self, addr, value, size=8) -> None:
        self.emit(ins.Store(self._op(addr), self._op(value), size))

    def call(self, func: str, args: Sequence[Operand] = (), dest=None) -> str:
        dest = self._dest(dest, "r")
        self.emit(ins.Call(dest, func, [self._op(a) for a in args]))
        return dest

    def call_void(self, func: str, args: Sequence[Operand] = ()) -> None:
        self.emit(ins.Call(None, func, [self._op(a) for a in args]))

    def input(self, stream: str, size: int = 1, dest=None) -> str:
        dest = self._dest(dest, "in")
        self.emit(ins.Input(dest, stream, size))
        return dest

    def output(self, stream: str, value: Operand, size: int = 8) -> None:
        self.emit(ins.Output(stream, self._op(value), size))

    def spawn(self, func: str, args: Sequence[Operand] = (), dest=None) -> str:
        dest = self._dest(dest, "tid")
        self.emit(ins.Spawn(dest, func, [self._op(a) for a in args]))
        return dest

    def join(self, tid: Operand) -> None:
        self.emit(ins.Join(self._op(tid)))

    def lock(self, mutex: Operand) -> None:
        self.emit(ins.Lock(self._op(mutex)))

    def unlock(self, mutex: Operand) -> None:
        self.emit(ins.Unlock(self._op(mutex)))

    # -- non-value emitters -------------------------------------------

    def jmp(self, label: str) -> None:
        self.emit(ins.Jmp(label))

    def br(self, cond: Operand, if_true: str, if_false: str) -> None:
        self.emit(ins.Br(self._op(cond), if_true, if_false))

    def ret(self, value: Optional[Operand] = None) -> None:
        self.emit(ins.Ret(None if value is None else self._op(value)))

    def assert_(self, cond: Operand, message: str = "assertion failed") -> None:
        self.emit(ins.Assert(self._op(cond), message))

    def abort(self, message: str = "abort") -> None:
        self.emit(ins.Abort(message))

    def ptwrite(self, value: Operand, tag: int = 0) -> None:
        self.emit(ins.PtWrite(self._op(value), tag))

    def nop(self, comment: str = "") -> None:
        self.emit(ins.Nop(comment))


class ModuleBuilder:
    """Top-level builder: declares globals and functions."""

    def __init__(self, name: str = "module"):
        self.module = Module(name)

    def global_(self, name: str, size: int, init: bytes = b"") -> str:
        self.module.add_global(name, size, init)
        return name

    def string(self, name: str, text: str) -> str:
        """Convenience: a NUL-terminated byte-string global."""
        data = text.encode("utf-8") + b"\x00"
        self.module.add_global(name, len(data), data)
        return name

    def function(self, name: str, params: Sequence[str] = ()) -> FunctionBuilder:
        return FunctionBuilder(self.module, name, list(params))

    def build(self) -> Module:
        from .verifier import verify_module

        verify_module(self.module)
        return self.module
