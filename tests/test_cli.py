"""The ``python -m repro`` command-line interface."""

import pathlib

import pytest

from repro.cli import main
from repro.ir import format_module

EIR = pathlib.Path(__file__).parent.parent / "examples" / "programs" \
    / "checksum.eir"


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "php-2012-2386" in out and "pbzip2-uaf" in out


class TestRun:
    def test_runs_eir_program(self, capsys):
        assert main(["run", str(EIR), "--stream",
                     "stdin=text:hello"]) == 0
        out = capsys.readouterr().out
        assert "exit value: 0" in out

    def test_hex_stream(self, capsys):
        assert main(["run", str(EIR), "--stream", "stdin=414200"]) == 0

    def test_file_stream(self, capsys, tmp_path):
        data = tmp_path / "input.bin"
        data.write_bytes(b"xy\x00")
        assert main(["run", str(EIR), "--stream",
                     f"stdin=@{data}"]) == 0

    def test_failure_returns_nonzero(self, capsys):
        # empty input: h stays 0 -> the program aborts
        assert main(["run", str(EIR)]) == 1
        assert "FAILURE" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["run", "/nope/missing.eir"]) == 2

    def test_bad_stream_spec(self):
        with pytest.raises(SystemExit):
            main(["run", str(EIR), "--stream", "garbage"])


class TestTrace:
    def test_dumps_decoded_trace(self, capsys):
        assert main(["trace", str(EIR), "--stream",
                     "stdin=text:hi"]) == 0
        out = capsys.readouterr().out
        assert "decoded trace" in out and "chunk" in out
        assert "trace bytes" in out


class TestReproduce:
    def test_reproduces_workload(self, capsys):
        assert main(["reproduce", "bash-108885"]) == 0
        out = capsys.readouterr().out
        assert "succeeded" in out and "verified by replay: True" in out

    def test_unknown_workload(self, capsys):
        assert main(["reproduce", "no-such-bug"]) == 2

    def test_work_limit_override(self, capsys):
        assert main(["reproduce", "libpng-2004-0597",
                     "--work-limit", "400000"]) == 0


class TestReport:
    def test_report_subset_to_file(self, capsys, tmp_path):
        out_file = tmp_path / "report.md"
        assert main(["report", "--only", "Figure 1",
                     "-o", str(out_file)]) == 0
        text = out_file.read_text()
        assert "# ER evaluation report" in text
        assert "Figure 1" in text


class TestEirFixture:
    def test_sample_program_roundtrips(self):
        from repro.ir import parse_module, verify_module

        module = parse_module(EIR.read_text())
        verify_module(module)
        assert format_module(module) == EIR.read_text()
