"""The iterative reconstruction loop (§3, Fig. 2).

Each iteration: wait for the failure to reoccur in production, ship the
trace, run shepherded symbolic execution, and either

* **complete** — solve for inputs, build a test case, verify it by
  replaying the deployed module, and return; or
* **stall** — run key data value selection on the constraint graph,
  instrument the program with ``ptwrite``s for the recording set, and
  redeploy for the next occurrence.

The loop is guaranteed to make progress for reoccurring failures because
every recorded value strictly concretizes part of the constraint graph.
"""

from __future__ import annotations

import logging
from typing import Callable, List, Optional

from .. import telemetry
from ..errors import ReconstructionError
from ..interp.failures import FailureInfo
from ..interp.interpreter import Interpreter
from ..ir.module import Module
from ..solver.budget import DEFAULT_WORK_LIMIT, WORK_PER_SECOND
from ..solver.cache import SolverCache
from ..symex.engine import ShepherdedSymex
from ..symex.result import StallInfo
from .instrument import instrument
from .pipeline import Speculator, predict_preshard
from .production import ProductionSite
from .report import IterationRecord, ReconstructionReport, TestCase
from .selection import RecordingPlan, select_key_values
from .signature import normalize_failure

SelectionFn = Callable[[StallInfo, frozenset], RecordingPlan]

logger = logging.getLogger(__name__)


def _exact_driver(module, trace, failure, **kwargs):
    # sharding/persistence/incrementality knobs only matter to the
    # recovering driver's gap search; an exact trace has nothing to
    # search or share, and stays bit-for-bit on the non-incremental path
    kwargs.pop("shards", None)
    kwargs.pop("cache_dir", None)
    kwargs.pop("steal", None)
    kwargs.pop("incremental", None)
    kwargs.pop("preshard", None)
    return ShepherdedSymex(module, trace, failure, **kwargs).run()


def _recovering_driver(module, trace, failure, **kwargs):
    """Driver tolerating lost TNT bits and ambiguous chunk orders.

    Gap search runs inside each candidate chunk order; for exact traces
    this collapses to a single plain replay.
    """
    from ..symex.gaps import replay_with_gap_recovery
    from ..symex.ordering import ambiguous_groups, candidate_orders
    from ..trace.decoder import DecodedTrace

    if not ambiguous_groups(trace.chunks):
        return replay_with_gap_recovery(module, trace, failure, **kwargs)
    last = None
    for chunks in candidate_orders(trace.chunks):
        candidate = DecodedTrace(chunks=chunks, truncated=trace.truncated)
        result = replay_with_gap_recovery(module, candidate, failure,
                                          **kwargs)
        if result.status != "diverged":
            return result
        last = result
    return last


class ExecutionReconstructor:
    """End-to-end ER: reproduces a reoccurring production failure."""

    def __init__(self, module: Module, *,
                 work_limit: int = DEFAULT_WORK_LIMIT,
                 max_occurrences: int = 20,
                 max_unrelated_occurrences: Optional[int] = None,
                 verify: bool = True,
                 selection: SelectionFn = select_key_values,
                 trace_recovery: bool = False,
                 shards: int = 1,
                 cache_dir: Optional[str] = None,
                 steal: bool = True,
                 portfolio: int = 1,
                 incremental: bool = True,
                 pipeline: bool = False):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if portfolio < 1:
            raise ValueError(f"portfolio must be >= 1, got {portfolio}")
        self.module = module
        self.work_limit = work_limit
        self.max_occurrences = max_occurrences
        #: gap-recovery fan-out width (worker processes per search)
        self.shards = shards
        #: work-stealing shard scheduler (False: static 2^k prefixes)
        self.steal = steal
        #: persistent cross-process solver-cache directory
        self.cache_dir = cache_dir
        #: solver-strategy race width per query (1: reference only)
        self.portfolio = portfolio
        #: assumption-stack reuse across sibling gap attempts
        self.incremental = incremental
        #: pipelined loop: overlap the production wait with speculative
        #: pre-solving and gap-search pre-sharding (outcome-identical to
        #: the sequential loop — see core/pipeline.py)
        self.pipeline = pipeline
        #: occurrences of *other* bugs never consume the reconstruction
        #: budget — ours still reoccurs regardless of how noisy the
        #: deployment is — but give-up must stay decidable, so they get
        #: their own (generous) bound
        self.max_unrelated = (max_unrelated_occurrences
                              if max_unrelated_occurrences is not None
                              else 10 * max_occurrences)
        self.verify = verify
        self.selection = selection
        #: tolerate degraded traces (lost TNT bits, timestamp-merged
        #: chunk order) by searching during replay — see DESIGN.md
        self.symex_driver = (_recovering_driver if trace_recovery
                             else _exact_driver)

    # ------------------------------------------------------------------

    def reconstruct(self, production: ProductionSite) -> ReconstructionReport:
        with telemetry.span("reconstruct.run"):
            report = self._reconstruct(production)
        telemetry.count("reconstruct.runs")
        telemetry.count("reconstruct.successes" if report.success
                        else "reconstruct.failures")
        logger.info("reconstruction %s after %d occurrence(s)",
                    "succeeded" if report.success else "FAILED",
                    report.occurrences)
        return report

    def _reconstruct(self,
                     production: ProductionSite) -> ReconstructionReport:
        tel = telemetry.get()
        deployed = self.module.clone()
        next_tag = 0
        signature: Optional[FailureInfo] = None
        iterations: List[IterationRecord] = []
        already_recorded: set = set()
        #: one cache per reconstruction: each iteration's search warm-
        #: starts from the previous iteration's partial model, and the
        #: common constraint prefix hits instead of being re-solved;
        #: with a cache_dir, a persistent tier shares results across
        #: shards, reconstructions, and processes
        persistent = None
        if self.cache_dir is not None:
            from ..solver.diskcache import DiskSolverCache
            persistent = DiskSolverCache(self.cache_dir)
        solver_cache = SolverCache(persistent=persistent)
        unrelated = 0
        #: pipelined-loop state: the speculator pre-solving the next
        #: occurrence's stall-point queries, and the predicted prefix
        #: partition for its gap search
        speculator: Optional[Speculator] = None
        preshard = None

        occurrence_no = 0
        while occurrence_no < self.max_occurrences:
            logger.info("iteration %d: waiting for the failure to reoccur",
                        occurrence_no + 1)
            with tel.span("reconstruct.production",
                          iteration=occurrence_no + 1) as prod_span:
                occurrence = self._await_occurrence(production, deployed,
                                                    speculator)
            normalized = normalize_failure(deployed, occurrence.failure)
            if signature is None:
                signature = normalized
            elif not signature.matches(normalized):
                # a different bug: keep waiting for ours (paper matches
                # failures on PC + call stack) without spending the
                # reconstruction budget on it — but the wait is real
                # wall time, so attribute it instead of dropping it on
                # the floor (``repro stats`` totals must add up)
                unrelated += 1
                logger.info("unrelated failure %s (%d/%d); waiting",
                            normalized, unrelated, self.max_unrelated)
                tel.count("reconstruct.unrelated_failures")
                tel.histogram("reconstruct.unrelated_wait_seconds") \
                    .record(prod_span.seconds)
                if unrelated >= self.max_unrelated:
                    logger.warning(
                        "giving up: %d unrelated failures without a "
                        "reoccurrence of %s", unrelated, signature)
                    return ReconstructionReport(
                        success=False, failure=signature, test_case=None,
                        occurrences=occurrence_no, iterations=iterations,
                        final_module=deployed,
                        unrelated_occurrences=unrelated)
                continue
            occurrence_no += 1
            if speculator is not None:
                # strict commit rule: only speculations whose assumed
                # values exactly match this occurrence's recorded ones
                # become (cache-mediated) facts; the rest are discarded
                speculator.commit(occurrence)
                speculator = None

            with tel.span("reconstruct.symex",
                          iteration=occurrence_no) as symex_span:
                result = self.symex_driver(deployed, occurrence.trace,
                                           occurrence.failure,
                                           work_limit=self.work_limit,
                                           solver_cache=solver_cache,
                                           shards=self.shards,
                                           cache_dir=self.cache_dir,
                                           steal=self.steal,
                                           portfolio=self.portfolio,
                                           incremental=self.incremental,
                                           preshard=preshard)
            preshard = None
            record = IterationRecord(
                occurrence=occurrence_no,
                status=result.status,
                instr_count=occurrence.run.instr_count,
                trace_bytes=occurrence.trace_bytes,
                symex_wall_seconds=result.stats.wall_seconds,
                symex_modelled_seconds=result.stats.solver_work
                / WORK_PER_SECOND,
                solver_calls=result.stats.solver_calls,
            )
            record.phase_seconds["production"] = prod_span.seconds
            record.phase_seconds["symex"] = symex_span.seconds
            iterations.append(record)
            logger.info("iteration %d: symex %s (%d instrs, %d solver "
                        "calls, %.1f modelled s)", occurrence_no,
                        result.status, record.instr_count,
                        record.solver_calls,
                        record.symex_modelled_seconds)

            if result.completed:
                test_case = TestCase(
                    streams=result.model.streams(),
                    quantum=occurrence.run.env.quantum,
                    description=f"generated for {occurrence.failure}",
                )
                with tel.span("reconstruct.verify",
                              iteration=occurrence_no):
                    verified = (self._verify(deployed, test_case,
                                             occurrence.failure)
                                if self.verify else False)
                if self.verify and not verified:
                    raise ReconstructionError(
                        "generated test case failed replay verification")
                self._emit_iteration(tel, record)
                return ReconstructionReport(
                    success=True, failure=occurrence.failure,
                    test_case=test_case, occurrences=occurrence_no,
                    iterations=iterations, verified=verified,
                    final_module=deployed,
                    unrelated_occurrences=unrelated)

            if result.status == "diverged":
                self._emit_iteration(tel, record)
                raise ReconstructionError(
                    f"shepherded symbolic execution diverged: "
                    f"{result.divergence_reason}")

            # stalled: select key data values and redeploy
            with tel.span("reconstruct.selection",
                          iteration=occurrence_no) as sel_span:
                plan = self.selection(result.stall,
                                      frozenset(already_recorded))
            record.phase_seconds["selection"] = sel_span.seconds
            record.recorded_items = list(plan.items)
            record.recording_cost = plan.total_cost
            record.graph_nodes = plan.graph_nodes
            record.stall_point = str(result.stall.point)
            self._emit_iteration(tel, record)
            if not plan.items:
                raise ReconstructionError(
                    "stalled but nothing recordable was selected")
            logger.info(
                "iteration %d: stalled at %s; recording %d value(s), "
                "cost %d B/occurrence", occurrence_no, record.stall_point,
                len(plan.items), plan.total_cost)
            instrumented = instrument(deployed, plan.items, next_tag)
            deployed = instrumented.module
            next_tag = instrumented.next_tag
            already_recorded.update(
                (item.point.func, item.register) for item in plan.items)
            if self.pipeline:
                speculator = Speculator(
                    result.stall, plan, instrumented, solver_cache,
                    work_limit=self.work_limit,
                    cache_dir=self.cache_dir,
                    pool=self._speculation_pool())
                preshard = predict_preshard(occurrence.trace,
                                            self.shards, self.steal)

        return ReconstructionReport(
            success=False, failure=signature, test_case=None,
            occurrences=self.max_occurrences, iterations=iterations,
            final_module=deployed, unrelated_occurrences=unrelated)

    def _speculation_pool(self):
        """The shared worker pool for speculation tasks, or None for
        inline speculation (serial config, or already inside a pool
        worker that cannot spawn children)."""
        from ..parallel import get_pool, in_pool_worker

        if self.shards <= 1 or in_pool_worker():
            return None
        return get_pool(self.shards)

    def _await_occurrence(self, production: ProductionSite,
                          deployed: Module,
                          speculator: Optional[Speculator]):
        """The next occurrence — sequential wait, or the pipelined
        deferred wait with speculation filling the idle time.

        The worker pool (when configured) is spawned *before* the
        production thread starts: forking after this process is
        multi-threaded risks inheriting a lock mid-acquisition.
        """
        if not self.pipeline:
            return production.run_once(deployed)
        if speculator is not None and speculator.pool is not None:
            speculator.pool.ensure_workers()
        deferred = production.start(deployed)
        occurrence = deferred.poll()
        while occurrence is None:
            if speculator is not None and speculator.step():
                occurrence = deferred.poll()
                continue
            occurrence = deferred.wait()
        return occurrence

    @staticmethod
    def _emit_iteration(tel, record: IterationRecord) -> None:
        """One structured end-of-iteration event (drives ``repro stats``)."""
        tel.event("reconstruct.iteration",
                  iteration=record.occurrence,
                  status=record.status,
                  instrs=record.instr_count,
                  trace_bytes=record.trace_bytes,
                  solver_calls=record.solver_calls,
                  modelled_s=round(record.symex_modelled_seconds, 3),
                  recorded_bytes=record.recording_cost,
                  stall_point=record.stall_point)

    # ------------------------------------------------------------------

    def _verify(self, deployed: Module, test_case: TestCase,
                failure: FailureInfo) -> bool:
        """Replay the generated input: must hit the same failure."""
        result = Interpreter(deployed, test_case.environment()).run()
        return (result.failure is not None
                and result.failure.matches(failure))
