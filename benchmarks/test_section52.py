"""Benchmarks: the §5.2 studies — accuracy vs REPT, selection vs random."""

import pytest

from repro.evaluation.accuracy import run_accuracy
from repro.evaluation.random_cmp import run_random_comparison


@pytest.mark.benchmark(group="accuracy")
def test_accuracy_vs_rept(benchmark, save_artifact):
    """ER replays exactly; REPT's recovery degrades with trace length."""
    result = benchmark.pedantic(run_accuracy, rounds=1, iterations=1)
    save_artifact("accuracy", result.render())
    assert result.er_always_exact
    assert result.rept_error_grows_with_length()
    nontrivial = [r for r in result.rows if r.trace_length > 500]
    assert all(r.rept_error_rate > 0.1 for r in nontrivial)


@pytest.mark.benchmark(group="random-selection")
def test_random_selection_ablation(benchmark, save_artifact):
    """Key-data-value selection vs same-budget random recording."""
    result = benchmark.pedantic(run_random_comparison, rounds=1,
                                iterations=1)
    save_artifact("random_selection", result.render())
    needing = result.needing_data
    assert needing, "most workloads need data recording"
    er_ok = sum(1 for r in needing if r.er_success)
    random_ok = sum(1 for r in needing if r.random_success)
    assert er_ok == len(needing)      # ER reproduces everything
    assert random_ok < er_ok          # random misses some (paper: 10/11)
