"""The batch reconstruction runner and its telemetry merging."""

import json

import pytest

from repro import telemetry
from repro.core import ProductionSite
from repro.parallel import (BatchResult, _shard_prefixes, run_batch,
                            shard_gap_search, write_merged_jsonl)
from repro.symex.gaps import replay_with_gap_recovery
from repro.workloads import get_workload

#: small, fast workloads — the batch tests stay well under a second each
FAST = ["objdump-2018-6323", "matrixssl-2014-1569"]


class TestRunBatch:
    def test_serial_batch(self):
        result = run_batch(FAST, parallel=1)
        assert [i.workload for i in result.items] == FAST
        assert result.succeeded == len(FAST)
        assert all(i.error is None for i in result.items)
        assert all(i.occurrences >= 1 for i in result.items)

    def test_parallel_matches_serial(self):
        serial = run_batch(FAST, parallel=1)
        parallel = run_batch(FAST, parallel=2)
        fingerprint = lambda r: [(i.workload, i.success, i.verified,
                                  i.occurrences, i.unrelated_occurrences)
                                 for i in r.items]
        assert fingerprint(parallel) == fingerprint(serial)

    def test_merged_telemetry_sums_counters(self):
        result = run_batch(FAST, parallel=1)
        counters = result.telemetry["counters"]
        assert counters["reconstruct.runs"] == len(FAST)
        # every worker's solver traffic is visible in the merged view
        assert counters["reconstruct.successes"] == len(FAST)

    def test_solver_cache_stats_surface(self):
        result = run_batch(FAST, parallel=1)
        stats = result.solver_cache_stats
        assert {"hits", "misses", "hit_rate"} <= set(stats)
        assert stats["misses"] >= 0

    def test_bad_workload_isolated(self):
        result = run_batch(["objdump-2018-6323", "no-such-workload"])
        good, bad = result.items
        assert good.success and good.error is None
        assert not bad.success and "no-such-workload" in bad.error
        assert result.succeeded == 1

    def test_rejects_nonpositive_parallel(self):
        with pytest.raises(ValueError):
            run_batch(FAST, parallel=0)

    def test_to_dict_round_trips_through_json(self):
        result = run_batch(FAST[:1])
        data = json.loads(json.dumps(result.to_dict()))
        assert data["total"] == 1
        assert data["items"][0]["workload"] == FAST[0]

    def test_worker_load_accounts_every_item(self):
        result = run_batch(FAST, parallel=2)
        load = result.worker_load
        assert sum(entry["tasks"] for entry in load.values()) == len(FAST)
        assert all(entry["wall_seconds"] >= 0 for entry in load.values())
        assert "worker_load" in result.to_dict()

    def test_cache_dir_shared_across_batch_runs(self, tmp_path):
        cold = run_batch(FAST[:1], parallel=1, cache_dir=str(tmp_path))
        warm = run_batch(FAST[:1], parallel=1, cache_dir=str(tmp_path))
        assert cold.succeeded == warm.succeeded == 1
        assert (tmp_path / "solver-cache.jsonl").exists()


def _degraded_occurrence(name):
    workload = get_workload(name)
    module = workload.fresh_module()
    site = ProductionSite(workload.failing_env, mapping_loss=0.085,
                          per_cpu_buffers=True)
    occurrence = site.run_once(module)
    return workload, module, occurrence


class TestShardedGapSearch:
    def test_matches_serial_on_gap_heavy_workloads(self):
        for name in FAST:
            workload, module, occ = _degraded_occurrence(name)
            kwargs = dict(work_limit=workload.work_limit * 20)
            serial = replay_with_gap_recovery(module, occ.trace,
                                              occ.failure, **kwargs)
            sharded = replay_with_gap_recovery(module, occ.trace,
                                               occ.failure, shards=2,
                                               **kwargs)
            assert sharded.status == serial.status, name
            serial_model = (serial.model.assignment
                            if serial.model else None)
            sharded_model = (sharded.model.assignment
                             if sharded.model else None)
            assert sharded_model == serial_model, name

    def test_no_gaps_degrades_to_serial(self):
        workload = get_workload(FAST[0])
        module = workload.fresh_module()
        occ = ProductionSite(workload.failing_env).run_once(module)
        kwargs = dict(max_attempts=512, work_limit=workload.work_limit)
        serial = replay_with_gap_recovery(module, occ.trace, occ.failure,
                                          **kwargs)
        result = shard_gap_search(module, occ.trace, occ.failure,
                                  shards=2, **kwargs)
        # an intact trace has no prefixes to fan out: same code path
        assert result.status == serial.status
        assert result.gap_attempts == 1

    def test_rejects_nonpositive_shards(self):
        workload, module, occ = _degraded_occurrence(FAST[0])
        with pytest.raises(ValueError, match="shards"):
            shard_gap_search(module, occ.trace, occ.failure, shards=0,
                             max_attempts=512)

    def test_shard_counters_folded_into_caller(self):
        workload, module, occ = _degraded_occurrence(FAST[0])
        registry = telemetry.Telemetry()
        with telemetry.scoped(registry):
            replay_with_gap_recovery(module, occ.trace, occ.failure,
                                     shards=2,
                                     work_limit=workload.work_limit * 20)
        counters = registry.snapshot()["counters"]
        assert counters.get("parallel.gap_shards", 0) >= 1
        # the shards' own replay traffic is visible in the parent view:
        # the parent's re-run contributes exactly one recovery/replay, so
        # a total of two or more proves the workers' counters were folded
        replays = (counters.get("symex.gap_replays", 0)
                   + counters.get("symex.gap_recoveries", 0))
        assert replays >= 2


class TestShardPrefixes:
    def _trace(self, name=FAST[0]):
        _, _, occ = _degraded_occurrence(name)
        return occ.trace

    def test_serial_dfs_order(self):
        trace = self._trace()
        prefixes = _shard_prefixes(trace, shards=2)
        assert prefixes[0] == [True] * len(prefixes[0])  # serial start
        assert prefixes[-1] == [False] * len(prefixes[0])
        assert len(prefixes) == 2 ** len(prefixes[0])
        assert len(set(map(tuple, prefixes))) == len(prefixes)

    def test_depth_bounded_by_gap_count(self):
        workload = get_workload(FAST[0])
        module = workload.fresh_module()
        occ = ProductionSite(workload.failing_env).run_once(module)
        assert _shard_prefixes(occ.trace, shards=4) == []  # no gaps

    def test_more_shards_more_tasks(self):
        trace = self._trace()
        assert len(_shard_prefixes(trace, shards=8)) >= \
            len(_shard_prefixes(trace, shards=2))


class TestMergedJsonl:
    def test_merged_log_readable_by_stats(self, tmp_path):
        result = run_batch(FAST, parallel=1, capture_events=True)
        path = tmp_path / "merged.jsonl"
        lines = write_merged_jsonl(result, path)
        events = telemetry.read_jsonl(path)
        assert len(events) == lines
        # events are tagged with their workload
        tagged = {e.get("workload") for e in events if "workload" in e}
        assert tagged == set(FAST)
        # the final snapshot carries the merged counters
        snapshot = telemetry.final_snapshot(events)
        assert snapshot["counters"]["reconstruct.runs"] == len(FAST)
        # and the human renderer accepts the stream
        assert "iter" in telemetry.render_stats(events)

    def test_no_events_without_capture(self):
        result = run_batch(FAST[:1], parallel=1)
        assert result.items[0].events == []


class TestMergeSnapshots:
    def test_counters_sum(self):
        merged = telemetry.merge_snapshots([
            {"counters": {"x": 1}, "gauges": {}, "histograms": {}},
            {"counters": {"x": 2, "y": 5}, "gauges": {}, "histograms": {}},
            None,
        ])
        assert merged["counters"] == {"x": 3, "y": 5}

    def test_gauges_keep_max(self):
        merged = telemetry.merge_snapshots([
            {"counters": {}, "gauges": {"g": 3}, "histograms": {}},
            {"counters": {}, "gauges": {"g": 7}, "histograms": {}},
        ])
        assert merged["gauges"]["g"] == 7

    def test_histograms_merge_exact_aggregates(self):
        h1 = {"count": 2, "sum": 10.0, "min": 1.0, "max": 9.0,
              "mean": 5.0, "p50": 5.0, "p90": 9.0, "p99": 9.0}
        h2 = {"count": 2, "sum": 6.0, "min": 2.0, "max": 4.0,
              "mean": 3.0, "p50": 3.0, "p90": 4.0, "p99": 4.0}
        merged = telemetry.merge_snapshots([
            {"counters": {}, "gauges": {}, "histograms": {"h": h1}},
            {"counters": {}, "gauges": {}, "histograms": {"h": h2}},
        ])["histograms"]["h"]
        assert merged["count"] == 4
        assert merged["sum"] == 16.0
        assert merged["min"] == 1.0 and merged["max"] == 9.0
        assert merged["mean"] == 4.0

    def test_empty_input(self):
        merged = telemetry.merge_snapshots([])
        assert merged == {"counters": {}, "gauges": {}, "histograms": {}}
