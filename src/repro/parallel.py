"""Parallel batch reconstruction: many workloads, one merged report.

Reconstructions of distinct failures are embarrassingly parallel — each
one owns its module clone, production site, term space, and solver
cache — so the batch runner fans workloads out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Process (not thread)
workers sidestep the GIL: shepherded symbolic execution is pure Python
and CPU-bound.

Every worker runs under its own telemetry registry and ships back a
picklable :class:`BatchItem` — outcome summary, metric snapshot, and
(optionally) the structured event stream.  The parent merges the
snapshots with :func:`repro.telemetry.merge_snapshots` and can write a
single combined JSONL log (each event tagged with its workload) that
``repro stats`` renders like any single-run log.

``parallel=1`` degrades to a plain in-process loop — same code path,
same reports, no executor — which is also the serial baseline that
``repro bench`` compares against to measure the speedup.

Beside the batch runner lives :func:`shard_gap_search`: intra-
reconstruction parallelism.  One gap-recovery search (the serial DFS in
``repro.symex.gaps``) is split into decision-vector *prefix subspaces*,
each explored by a worker process confined to its prefix; the winner is
the first non-diverged outcome in serial DFS order, so the sharded
search returns the same result the serial search would.  Workers share
solver work through the persistent disk cache (``cache_dir``) and ship
back reduced, picklable outcomes — the parent replays the winning
decision vector once, in-process, to materialize the full
:class:`~repro.symex.result.SymexResult` (terms never cross process
boundaries).

Two schedulers drive the shard tasks.  The static one (``steal=False``)
fans out 2^k fixed prefixes and scans their futures in DFS order.  The
default work-stealing one keeps workers pulling subspaces from a shared
work queue; an idle worker posts a steal token, and the next busy
worker to hit a gap-decision checkpoint donates the unexplored half of
its subspace (its current decision prefix extended by one bit — the
victim keeps the half it is searching, the thief takes the sibling).
The parent consumes outcomes as they complete but commits the winner by
serial DFS order, only cancelling in-flight shards (via a shared
``multiprocessing.Event`` polled at every checkpoint) once no earlier
subspace is still outstanding — so both schedulers return byte-
identical results to the serial search.

Everything that crosses a process boundary here carries *trace
context*: the parent captures :meth:`Telemetry.trace_context` inside
its fan-out span and hands it to every worker, whose registry joins the
parent's trace (same ``trace_id``, root spans parented on the handoff
span) and rebases its clock onto the parent timeline — so a merged
event stream renders as one causally-linked tree in the Perfetto
exporter.  The schedulers also meter their own coordination overhead:
``parallel.queue_wait_seconds`` (task enqueue → dequeue, shared wall
clock), ``parallel.worker_idle_seconds`` (stealing workers blocked on
an empty work queue), ``parallel.steal_latency_seconds`` (steal token
posted → serviced), and ``parallel.pool_spinup`` / ``pool_teardown``
spans — surfaced by ``repro stats`` as the overhead-attribution table.
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os
import pathlib
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import product
from queue import Empty
from typing import Dict, List, Optional, Sequence, Tuple, Union

from . import telemetry
from .core import ExecutionReconstructor, ProductionSite
from .errors import SearchCancelled
from .solver import terms as T
from .solver.cache import SolverCache
from .solver.diskcache import DiskSolverCache
from .solver.incremental import AssumptionStack
from .symex.engine import ShepherdedSymex
from .symex.gaps import _search_gap_decisions
from .trace.degrade import gap_count
from .workloads import get_workload, workload_names

__all__ = ["BatchItem", "BatchResult", "GapShardOutcome",
           "measure_incremental_ab", "run_batch", "shard_gap_search",
           "write_merged_jsonl"]

logger = logging.getLogger(__name__)

#: ceiling on the prefix depth (2^depth shard tasks)
MAX_SHARD_DEPTH = 6


@dataclass
class BatchItem:
    """One workload's reconstruction outcome, picklable across processes."""

    workload: str
    success: bool = False
    verified: bool = False
    occurrences: int = 0
    unrelated_occurrences: int = 0
    wall_seconds: float = 0.0
    symex_modelled_seconds: float = 0.0
    recorded_bytes: int = 0
    solver_cache: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None
    #: pid of the pool process that ran this workload (load balance)
    worker: int = 0
    #: this worker's full metric snapshot
    telemetry: Dict = field(default_factory=dict)
    #: structured event stream (only when events were requested)
    events: List[Dict] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "success": self.success,
            "verified": self.verified,
            "occurrences": self.occurrences,
            "unrelated_occurrences": self.unrelated_occurrences,
            "wall_seconds": round(self.wall_seconds, 4),
            "symex_modelled_seconds":
                round(self.symex_modelled_seconds, 4),
            "recorded_bytes": self.recorded_bytes,
            "solver_cache": self.solver_cache,
            "error": self.error,
            "worker": self.worker,
        }


@dataclass
class BatchResult:
    """The merged outcome of one batch run."""

    items: List[BatchItem]
    parallelism: int
    wall_seconds: float
    #: all workers' metric snapshots folded into one
    telemetry: Dict = field(default_factory=dict)

    @property
    def succeeded(self) -> int:
        return sum(1 for i in self.items if i.success)

    @property
    def solver_cache_stats(self) -> Dict[str, float]:
        return _solver_cache_stats(self.telemetry.get("counters", {}))

    @property
    def worker_load(self) -> Dict[str, Dict[str, float]]:
        """Per-worker load balance: tasks run and wall-time, keyed by pid."""
        load: Dict[str, Dict[str, float]] = {}
        for item in self.items:
            entry = load.setdefault(str(item.worker),
                                    {"tasks": 0, "wall_seconds": 0.0})
            entry["tasks"] += 1
            entry["wall_seconds"] = round(
                entry["wall_seconds"] + item.wall_seconds, 4)
        return load

    @property
    def overhead(self) -> Dict[str, Dict]:
        """Coordination-overhead attribution over the merged snapshot."""
        return telemetry.overhead_attribution(self.telemetry)

    def to_dict(self) -> Dict:
        return {
            "parallelism": self.parallelism,
            "wall_seconds": round(self.wall_seconds, 4),
            "succeeded": self.succeeded,
            "total": len(self.items),
            "solver_cache": self.solver_cache_stats,
            "worker_load": self.worker_load,
            "overhead": self.overhead,
            "items": [item.to_dict() for item in self.items],
        }


def _solver_cache_stats(counters: Dict) -> Dict[str, float]:
    """Fold every cache-hit tier into one effectiveness summary.

    ``hits`` already includes exact, subsumption, and disk answers (the
    top-level solver paths bump it alongside the tier counter), but a
    successful *model probe* is recorded as a miss plus
    ``model_probe_hits`` — so queries answered without a solver search
    are ``hits + model_probe_hits`` out of ``hits + misses``.  Each
    tier is reported alongside the folded rate.
    """
    hits = counters.get("solver.cache.hits", 0)
    misses = counters.get("solver.cache.misses", 0)
    probes = counters.get("solver.cache.model_probe_hits", 0)
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "model_probe_hits": probes,
        "subsumption_hits":
            counters.get("solver.cache.subsumption_hits", 0),
        "disk_hits": counters.get("solver.cache.disk_hits", 0),
        "hit_rate": round((hits + probes) / total, 4) if total else 0.0,
    }


def _reconstruct_one(name: str, capture_events: bool,
                     cache_dir: Optional[str] = None,
                     context: Optional[telemetry.TraceContext] = None,
                     enqueued: Optional[float] = None,
                     portfolio: int = 1) -> BatchItem:
    """Worker body: one workload under a private telemetry registry.

    Runs in a pool process (or inline for ``parallel=1``); must only
    return picklable data, so the report's module/test-case objects are
    reduced to scalars here rather than shipped back.  ``context`` links
    the registry into the parent's trace; ``enqueued`` (the parent's
    submit wall-time) meters queue wait — which for the pool's first
    tasks honestly includes the worker-process spawn cost.
    """
    sink = telemetry.MemorySink() if capture_events else None
    registry = telemetry.Telemetry(sink, context=context)
    if enqueued is not None:
        registry.histogram("parallel.queue_wait_seconds").record(
            max(time.time() - enqueued, 0.0))
    item = BatchItem(workload=name, worker=os.getpid())
    started = time.perf_counter()
    with telemetry.scoped(registry):
        try:
            workload = get_workload(name)
            reconstructor = ExecutionReconstructor(
                workload.fresh_module(),
                work_limit=workload.work_limit,
                max_occurrences=workload.max_occurrences,
                cache_dir=cache_dir,
                portfolio=portfolio)
            report = reconstructor.reconstruct(
                ProductionSite(workload.failing_env))
            item.success = report.success
            item.verified = report.verified
            item.occurrences = report.occurrences
            item.unrelated_occurrences = report.unrelated_occurrences
            item.symex_modelled_seconds = \
                report.total_symex_modelled_seconds
            item.recorded_bytes = report.total_recorded_bytes
        except Exception as exc:  # noqa: BLE001 — report, don't kill batch
            item.error = "".join(traceback.format_exception_only(
                type(exc), exc)).strip()
        if capture_events:
            registry.emit_snapshot()
    item.wall_seconds = time.perf_counter() - started
    item.telemetry = registry.snapshot()
    item.solver_cache = _solver_cache_stats(
        item.telemetry.get("counters", {}))
    if sink is not None:
        item.events = sink.events
    return item


def run_batch(names: Optional[Sequence[str]] = None, *,
              parallel: int = 1,
              capture_events: bool = False,
              cache_dir: Optional[str] = None,
              portfolio: int = 1) -> BatchResult:
    """Reconstruct ``names`` (default: every workload), ``parallel``-wide.

    Results come back in input order regardless of completion order.  A
    workload that raises contributes a :class:`BatchItem` with ``error``
    set instead of aborting the batch.  ``cache_dir`` points every
    worker at one shared persistent solver cache; ``portfolio`` is the
    per-worker solver-strategy race width (answers are unchanged, so
    batch results stay comparable across widths).
    """
    names = list(names) if names is not None else workload_names()
    if parallel < 1:
        raise ValueError(f"parallel must be >= 1, got {parallel}")
    tel = telemetry.get()
    # pool lifecycle costs live on a scratch registry so they can join
    # the *merged* snapshot (the parent's own registry is not part of
    # the per-item merge)
    overhead = telemetry.Telemetry()
    started = time.perf_counter()
    with tel.span("parallel.batch", workloads=len(names),
                  parallel=parallel):
        context = tel.trace_context()
        if parallel == 1 or len(names) <= 1:
            items = [_reconstruct_one(name, capture_events, cache_dir,
                                      context, None, portfolio)
                     for name in names]
        else:
            workers = min(parallel, len(names))
            with tel.span("parallel.pool_spinup", workers=workers) as up:
                pool = ProcessPoolExecutor(max_workers=workers)
            overhead.histogram("span.parallel.pool_spinup").record(
                up.seconds)
            try:
                futures = [pool.submit(_reconstruct_one, name,
                                       capture_events, cache_dir,
                                       context, time.time(), portfolio)
                           for name in names]
                items = [future.result() for future in futures]
            finally:
                with tel.span("parallel.pool_teardown",
                              workers=workers) as down:
                    pool.shutdown()
                overhead.histogram("span.parallel.pool_teardown").record(
                    down.seconds)
    wall = time.perf_counter() - started
    merged = telemetry.merge_snapshots(
        [item.telemetry for item in items] + [overhead.snapshot()])
    telemetry.count("parallel.batches")
    telemetry.count("parallel.workloads", len(items))
    return BatchResult(items=items, parallelism=parallel,
                       wall_seconds=wall, telemetry=merged)


def write_merged_jsonl(result: BatchResult,
                       path: Union[str, pathlib.Path]) -> int:
    """Write all workers' event streams as one combined JSONL log.

    Events keep their per-worker ``seq``/``ts`` and gain a ``workload``
    field; a final ``snapshot`` event carries the *merged* metrics so
    ``repro stats`` renders whole-batch counters.  The snapshot's
    ``seq`` is strictly past every merged event's (the per-worker
    sequences overlap, so a line count would collide with them) and its
    ``ts`` is the latest merged timestamp (a registry-relative instant,
    like every other event — not the batch duration).  Returns the
    number of lines written.
    """
    lines = 0
    max_seq = 0
    max_ts = 0.0
    with open(path, "w", encoding="utf-8") as fh:
        for item in result.items:
            for event in item.events:
                if event.get("type") == "snapshot":
                    continue      # superseded by the merged snapshot
                seq = event.get("seq")
                if isinstance(seq, int):
                    max_seq = max(max_seq, seq)
                ts = event.get("ts")
                if isinstance(ts, (int, float)):
                    max_ts = max(max_ts, float(ts))
                fh.write(json.dumps({**event, "workload": item.workload},
                                    default=str) + "\n")
                lines += 1
        fh.write(json.dumps({
            "type": "snapshot", "name": "telemetry.snapshot",
            "seq": max_seq + 1, "ts": round(max_ts, 6),
            "metrics": result.telemetry,
        }) + "\n")
    return lines + 1


# ----------------------------------------------------------------------
# sharded gap recovery (intra-reconstruction parallelism)

@dataclass
class GapShardOutcome:
    """One shard's reduced search outcome, picklable across processes.

    Deliberately term-free: only the decision bits travel back; the
    parent replays them in-process to rebuild the full result.
    ``status`` extends the engine statuses with ``"cancelled"`` (the
    shard stopped at a checkpoint after the winner was committed; its
    ``gap_attempts`` count the replays finished before stopping) and
    ``"error"`` (the search raised; ``error`` carries the message).
    """

    prefix: List[bool]
    status: str = "diverged"
    gap_bits: List[bool] = field(default_factory=list)
    gap_attempts: int = 0
    divergence_reason: Optional[str] = None
    diverged_chunk: Optional[int] = None
    worker: int = 0
    wall_seconds: float = 0.0
    #: subspaces this shard donated to thieves while searching
    steals_donated: int = 0
    #: worker-side failure description (``status == "error"`` only)
    error: Optional[str] = None
    #: this shard's full metric snapshot
    telemetry: Dict = field(default_factory=dict)
    #: structured event stream (captured when the parent's sink is live)
    events: List[Dict] = field(default_factory=list)


#: per-process shard state, shipped once via the pool initializer so the
#: module/trace are not re-pickled for every prefix task
_SHARD_STATE: Dict = {}

#: how long an idle worker waits on the work queue before (re)posting a
#: steal token, and how long the parent waits on the results queue
#: before health-checking its worker loops
_WORKER_POLL = 0.05
_PARENT_POLL = 0.1


def _gap_shard_init(module, trace, failure, max_attempts,
                    engine_kwargs, cache_dir, cancel=None,
                    work_q=None, steal_q=None, results_q=None,
                    done=None, context=None,
                    capture_events=False) -> None:
    """Pool initializer: stash the (large) shared inputs once per process.

    The queues and events only exist under the work-stealing scheduler;
    the static scheduler passes ``cancel`` alone (cooperative
    cancellation works for both).  They ride through the executor's
    ``initargs`` — multiprocessing's reducer handles queue/event
    inheritance on the process-spawn path, unlike task pickling.
    ``context`` is the parent's trace handoff (a plain frozen dataclass,
    picklable); ``capture_events`` asks shards to buffer and ship their
    event streams back for the parent to forward into its sink.
    """
    _SHARD_STATE.update(module=module, trace=trace, failure=failure,
                        max_attempts=max_attempts,
                        engine_kwargs=engine_kwargs, cache_dir=cache_dir,
                        cancel=cancel, work_q=work_q, steal_q=steal_q,
                        results_q=results_q, done=done, context=context,
                        capture_events=capture_events)


class _StealControl:
    """Worker-side checkpoint hook: cancellation + subspace donation.

    ``checkpoint`` runs before every replay in
    :func:`~repro.symex.gaps._search_gap_decisions`.  It aborts the
    shard once the parent committed a winner (``cancel`` event), and —
    under the stealing scheduler — serves at most one pending steal
    token by donating the unexplored half of this shard's remaining
    subspace: the shallowest liberated decision still set to True marks
    a False-sibling subtree the DFS has not entered (the search never
    returns a bit from False to True), so extending the current prefix
    there is a sound split.  The donated prefix travels to the parent
    (a ``("split", prefix)`` result message), which accounts for the
    new subspace *before* requeueing it — a thief can therefore never
    report an outcome the parent has not yet learned to expect.
    """

    def __init__(self, prefix, cancel, steal_q=None, results_q=None):
        self.prefix = list(prefix)
        self.cancel = cancel
        self.steal_q = steal_q
        self.results_q = results_q
        self.donated = 0

    def checkpoint(self, decisions: List[bool], locked_prefix: int,
                   attempts: int) -> int:
        if self.cancel is not None and self.cancel.is_set():
            raise SearchCancelled(attempts)
        if self.steal_q is None:
            return locked_prefix
        try:
            thief, posted = self.steal_q.get_nowait()
        except Empty:
            return locked_prefix
        # token post → service latency, on the shared wall clock; the
        # instant events land on the *victim's* track (this process)
        latency = max(time.time() - posted, 0.0)
        telemetry.histogram("parallel.steal_latency_seconds").record(
            latency)
        telemetry.event("parallel.steal_token", thief=thief,
                        latency_s=round(latency, 6))
        for i in range(locked_prefix, len(decisions)):
            if decisions[i]:
                stolen = list(decisions[:i]) + [False]
                self.results_q.put(("split", stolen))
                self.donated += 1
                telemetry.event("parallel.split", thief=thief,
                                prefix_len=len(stolen))
                return i + 1
        # nothing left to halve (all remaining bits already False):
        # drop the token; idle workers re-post while the queue is dry
        return locked_prefix


def _gap_shard_run(prefix: List[bool],
                   enqueued: Optional[float] = None) -> GapShardOutcome:
    """Worker body: search one prefix subspace under private state.

    Fresh term scope, telemetry registry, and in-memory solver cache per
    shard; the persistent tier (when ``cache_dir`` is set) is the only
    shared state, so shards warm-start each other's common-prefix
    queries through the disk file.  The registry joins the parent's
    trace (``_SHARD_STATE["context"]``) so the shard's spans link
    across the process boundary; ``enqueued`` meters queue wait.
    """
    state = _SHARD_STATE
    sink = telemetry.MemorySink() if state.get("capture_events") else None
    registry = telemetry.Telemetry(sink, context=state.get("context"))
    if enqueued is not None:
        registry.histogram("parallel.queue_wait_seconds").record(
            max(time.time() - enqueued, 0.0))
    outcome = GapShardOutcome(prefix=list(prefix), worker=os.getpid())
    started = time.perf_counter()
    cache_dir = state["cache_dir"]
    cache = SolverCache(
        persistent=DiskSolverCache(cache_dir) if cache_dir else None)
    engine_kwargs = dict(state["engine_kwargs"])
    if engine_kwargs.pop("incremental", False):
        # per-shard assumption stack: each worker's DFS walks its own
        # sibling prefixes, so retained state never crosses processes
        cache.assumptions = AssumptionStack()
    control = None
    if state.get("cancel") is not None:
        control = _StealControl(prefix, state["cancel"],
                                steal_q=state.get("steal_q"),
                                results_q=state.get("results_q"))
    try:
        with telemetry.scoped(registry), T.term_scope(), \
                registry.span("parallel.shard_search",
                              prefix_len=len(prefix)):
            result = _search_gap_decisions(
                state["module"], state["trace"], state["failure"],
                state["max_attempts"], cache, engine_kwargs,
                initial_decisions=list(prefix), locked_prefix=len(prefix),
                control=control)
    except SearchCancelled as stop:
        outcome.status = "cancelled"
        outcome.gap_attempts = stop.attempts
        outcome.divergence_reason = "cancelled: winner committed elsewhere"
        registry.event("parallel.shard_cancelled", attempts=stop.attempts)
    else:
        outcome.status = result.status
        outcome.gap_bits = list(result.gap_bits)
        outcome.gap_attempts = result.gap_attempts
        outcome.divergence_reason = result.divergence_reason
        outcome.diverged_chunk = result.diverged_chunk
    if control is not None:
        outcome.steals_donated = control.donated
    outcome.wall_seconds = time.perf_counter() - started
    outcome.telemetry = registry.snapshot()
    if sink is not None:
        outcome.events = sink.events
    return outcome


def _steal_worker_loop(slot: int) -> Tuple[int, Dict]:
    """Worker main loop under the stealing scheduler: pull, run, repeat.

    An idle worker (empty work queue) posts a steal token — at most one
    outstanding across the pool, so tokens cannot pile up — and the next
    victim to checkpoint answers it through the parent.  Search errors
    are reported as ``"error"`` outcomes rather than raised: the loop
    future must survive so its sibling tasks still drain, and the parent
    re-raises after accounting.  Returns the number of tasks this worker
    ran plus a metric snapshot carrying its coordination overhead —
    ``parallel.worker_idle_seconds`` records each contiguous stretch the
    loop spent blocked on an empty work queue (including the final wait
    for the parent's ``done``).
    """
    state = _SHARD_STATE
    work_q, steal_q = state["work_q"], state["steal_q"]
    results_q, cancel, done = (state["results_q"], state["cancel"],
                               state["done"])
    registry = telemetry.Telemetry(context=state.get("context"))
    idle_hist = registry.histogram("parallel.worker_idle_seconds")
    ran = 0
    idle_since: Optional[float] = None
    while not done.is_set():
        try:
            prefix, enqueued = work_q.get(timeout=_WORKER_POLL)
        except Empty:
            if idle_since is None:
                idle_since = time.perf_counter()
            if not cancel.is_set() and steal_q.empty():
                steal_q.put((slot, time.time()))
            continue
        if idle_since is not None:
            idle_hist.record(time.perf_counter() - idle_since)
            idle_since = None
        try:
            outcome = _gap_shard_run(prefix, enqueued)
        except Exception as exc:  # noqa: BLE001 — ship back, keep draining
            outcome = GapShardOutcome(
                prefix=list(prefix), worker=os.getpid(), status="error",
                error="".join(traceback.format_exception_only(
                    type(exc), exc)).strip())
        results_q.put(outcome)
        ran += 1
    if idle_since is not None:
        idle_hist.record(time.perf_counter() - idle_since)
    return ran, registry.snapshot()


def _shard_prefixes(trace, shards: int) -> List[List[bool]]:
    """Decision-vector prefixes partitioning the gap space, in serial
    DFS order (True before False at every position), so scanning shard
    outcomes in task order finds the same first solution the serial
    search would."""
    gaps = gap_count(trace)
    depth = min(gaps, max(1, (shards - 1).bit_length() + 2),
                MAX_SHARD_DEPTH)
    if depth <= 0:
        return []
    return [list(bits) for bits in product((True, False), repeat=depth)]


def _steal_prefixes(trace, shards: int) -> List[List[bool]]:
    """Seed prefixes for the stealing scheduler: one per worker.

    Unlike the static fan-out there is no need to over-partition —
    idle workers rebalance by stealing — so the depth only covers the
    pool width and the initial tasks stay as large as possible."""
    gaps = gap_count(trace)
    depth = min(gaps, max(1, (shards - 1).bit_length()), MAX_SHARD_DEPTH)
    if depth <= 0:
        return []
    return [list(bits) for bits in product((True, False), repeat=depth)]


def _dfs_key(bits: Sequence[bool]) -> Tuple[int, ...]:
    """Serial-DFS visit order as a sortable key (True before False)."""
    return tuple(0 if bit else 1 for bit in bits)


def _choose_outcome(outcomes: Sequence[GapShardOutcome]
                    ) -> GapShardOutcome:
    """Commit the winner exactly as the serial DFS would.

    The first non-diverged leaf in serial DFS order wins; with none, the
    DFS-last subspace's final divergence stands in for the serial
    search's last attempt.  Cancelled shards never compete — they are
    all DFS-after a finalized winner by construction.
    """
    candidates = [o for o in outcomes
                  if o.status not in ("cancelled", "error")]
    if not candidates:
        raise RuntimeError("sharded gap search produced no outcomes")
    solutions = [o for o in candidates if o.status != "diverged"]
    if solutions:
        return min(solutions, key=lambda o: (_dfs_key(o.gap_bits),
                                             _dfs_key(o.prefix)))
    return max(candidates, key=lambda o: _dfs_key(o.prefix))


def _static_shard_outcomes(module, trace, failure, max_attempts,
                           engine_kwargs, cache_dir, shards, prefixes,
                           context=None, capture_events=False):
    """Static scheduler: 2^k fixed prefix tasks, scanned in DFS order.

    Returns ``(outcomes, errors)``.  Once a winner lands, queued tasks
    are cancelled and running ones are stopped cooperatively via the
    shared cancel event; their outcomes are still drained so telemetry
    and attempt totals stay complete and worker exceptions surface
    instead of vanishing with a skipped future.
    """
    tel = telemetry.get()
    ctx = multiprocessing.get_context()
    cancel = ctx.Event()
    outcomes: List[GapShardOutcome] = []
    errors: List[BaseException] = []
    winner_found = False
    workers = min(shards, len(prefixes))
    with tel.span("parallel.pool_spinup", workers=workers,
                  scheduler="static"):
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx,
            initializer=_gap_shard_init,
            initargs=(module, trace, failure, max_attempts,
                      engine_kwargs, cache_dir, cancel,
                      None, None, None, None, context, capture_events))
    try:
        futures = [pool.submit(_gap_shard_run, prefix, time.time())
                   for prefix in prefixes]
        consumed = set()
        for index, future in enumerate(futures):  # serial DFS order
            if winner_found or errors:
                future.cancel()  # queued tasks; running ones see cancel
                continue
            consumed.add(index)
            try:
                outcome = future.result()
            except Exception as exc:  # noqa: BLE001 — surface after drain
                errors.append(exc)
                cancel.set()
                continue
            outcomes.append(outcome)
            if outcome.status not in ("diverged", "cancelled"):
                winner_found = True
                cancel.set()
        # drain shards that were already running when the scan stopped:
        # they abort at their next checkpoint, and their attempt counts,
        # telemetry, and exceptions still belong to this search
        for index, future in enumerate(futures):
            if index in consumed or future.cancelled():
                continue
            try:
                outcomes.append(future.result())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
    finally:
        with tel.span("parallel.pool_teardown", workers=workers,
                      scheduler="static"):
            pool.shutdown()
    return outcomes, errors


def _steal_shard_outcomes(module, trace, failure, max_attempts,
                          engine_kwargs, cache_dir, shards, prefixes,
                          context=None, capture_events=False):
    """Work-stealing scheduler: a shared queue of splittable subspaces.

    Every worker runs :func:`_steal_worker_loop`; the parent is the
    only consumer of the results queue and the only producer of the
    work queue, which makes the accounting exact: ``pending`` counts
    subspaces handed to the pool minus outcomes received, and a
    ``("split", prefix)`` message always reaches the parent *before*
    any outcome for that prefix can exist (the donated subspace is
    requeued by the parent itself).  The winner is finalized — and the
    cancel event raised — only once no outstanding subspace precedes
    its leaf in serial DFS order, so cancellation can never starve the
    leaf the serial search would have returned.

    Returns ``(outcomes, steals, loop_snapshots)`` — the loop snapshots
    carry each worker's idle-time histogram.
    """
    tel = telemetry.get()
    ctx = multiprocessing.get_context()
    work_q = ctx.Queue()
    steal_q = ctx.Queue()
    results_q = ctx.Queue()
    cancel = ctx.Event()
    done = ctx.Event()
    pending = 0
    outstanding = set()
    for prefix in prefixes:
        work_q.put((list(prefix), time.time()))
        pending += 1
        outstanding.add(tuple(prefix))
    outcomes: List[GapShardOutcome] = []
    loop_snapshots: List[Dict] = []
    steals = 0
    winner: Optional[GapShardOutcome] = None
    final = False
    with tel.span("parallel.pool_spinup", workers=shards,
                  scheduler="steal"):
        pool = ProcessPoolExecutor(
            max_workers=shards, mp_context=ctx,
            initializer=_gap_shard_init,
            initargs=(module, trace, failure, max_attempts,
                      engine_kwargs, cache_dir, cancel,
                      work_q, steal_q, results_q, done, context,
                      capture_events))
    try:
        loops = [pool.submit(_steal_worker_loop, slot)
                 for slot in range(shards)]
        try:
            while pending:
                try:
                    message = results_q.get(timeout=_PARENT_POLL)
                except Empty:
                    for loop in loops:  # a dead pool would hang us
                        if loop.done() and loop.exception() is not None:
                            raise loop.exception()
                    continue
                if isinstance(message, tuple):
                    _, stolen = message
                    pending += 1
                    steals += 1
                    outstanding.add(tuple(stolen))
                    work_q.put((list(stolen), time.time()))
                    continue
                outcome = message
                pending -= 1
                outstanding.discard(tuple(outcome.prefix))
                outcomes.append(outcome)
                if outcome.status == "error":
                    cancel.set()  # drain the rest fast, raise after
                elif outcome.status not in ("diverged", "cancelled"):
                    if winner is None or \
                            (_dfs_key(outcome.gap_bits),
                             _dfs_key(outcome.prefix)) < \
                            (_dfs_key(winner.gap_bits),
                             _dfs_key(winner.prefix)):
                        winner = outcome
                if winner is not None and not final:
                    # final iff no outstanding subspace can still hold
                    # a DFS-earlier leaf; a prefix that orders equal-or
                    # -before the winner leaf blocks (tuple comparison
                    # treats a prefix of the leaf as earlier, which is
                    # conservative and therefore sound)
                    wkey = _dfs_key(winner.gap_bits)
                    if all(_dfs_key(p) > wkey for p in outstanding):
                        final = True
                        cancel.set()
        finally:
            done.set()
            for loop in loops:
                try:
                    _, snapshot = loop.result(timeout=30)
                except Exception:  # noqa: BLE001 — crash surfaced above
                    continue
                loop_snapshots.append(snapshot)
    finally:
        with tel.span("parallel.pool_teardown", workers=shards,
                      scheduler="steal"):
            pool.shutdown()
    return outcomes, steals, loop_snapshots


def shard_gap_search(module, trace, failure, *, shards: int,
                     max_attempts: int, solver_cache=None,
                     cache_dir: Optional[str] = None,
                     steal: bool = True,
                     incremental: bool = True,
                     **engine_kwargs):
    """Gap-recovery search fanned out over ``shards`` worker processes.

    The serial DFS's leaf space is partitioned by decision prefixes;
    each worker explores a subspace with the same backtracking search,
    confined by a locked prefix.  ``steal`` (the default) enables the
    work-stealing scheduler — idle workers split busy siblings'
    subspaces instead of waiting out a static partition — while
    ``steal=False`` keeps the static 2^k fan-out.  Either way the
    winning outcome is the first non-diverged one in serial DFS order —
    identical to what the serial search returns — and the parent
    replays its decision vector once, in-process and against
    ``solver_cache``, to materialize the full
    :class:`~repro.symex.result.SymexResult`.

    Worker telemetry snapshots are merged via
    :func:`repro.telemetry.merge_snapshots` and absorbed into the
    calling registry — counters sum, histogram aggregates fold in with
    approximate percentiles — so worker metrics (including the
    coordination-overhead histograms) stay visible in the parent's own
    final snapshot.  When the parent's sink is live, shard event
    streams are shipped back and re-emitted verbatim, forming one
    causally-linked trace across the process boundary.  The parent
    additionally records steal/cancellation counters and a per-shard
    attempt histogram (``parallel.shard_subspace_attempts``).
    """
    from .symex.gaps import replay_with_gap_recovery

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if solver_cache is None:
        solver_cache = SolverCache(
            persistent=DiskSolverCache(cache_dir) if cache_dir else None)
    prefixes = (_steal_prefixes if steal else _shard_prefixes)(trace,
                                                               shards)
    if shards == 1 or not prefixes:
        # no gaps to split on (or nothing to parallelize): serial path
        return replay_with_gap_recovery(module, trace, failure,
                                        max_attempts=max_attempts,
                                        solver_cache=solver_cache,
                                        incremental=incremental,
                                        **engine_kwargs)
    tel = telemetry.get()
    steals = 0
    loop_snapshots: List[Dict] = []
    capture_events = tel.enabled
    # per-worker config rides inside the shipped kwargs dict; the shard
    # body pops what ShepherdedSymex must not see
    worker_kwargs = dict(engine_kwargs, incremental=incremental)
    with tel.span("symex.gap_shard_search", shards=shards,
                  tasks=len(prefixes), steal=steal):
        # captured inside the span: worker root spans parent on it
        context = tel.trace_context()
        if steal:
            outcomes, steals, loop_snapshots = _steal_shard_outcomes(
                module, trace, failure, max_attempts, worker_kwargs,
                cache_dir, shards, prefixes, context, capture_events)
            errors: List[BaseException] = []
        else:
            outcomes, errors = _static_shard_outcomes(
                module, trace, failure, max_attempts, worker_kwargs,
                cache_dir, shards, prefixes, context, capture_events)
    merged = telemetry.merge_snapshots(
        [o.telemetry for o in outcomes] + loop_snapshots)
    tel.absorb(merged)
    tel.forward(event for outcome in outcomes
                for event in outcome.events)
    tel.count("parallel.gap_shards", len(outcomes))
    if steals:
        tel.count("parallel.steals", steals)
    cancelled = sum(1 for o in outcomes if o.status == "cancelled")
    if cancelled:
        tel.count("parallel.cancelled_shards", cancelled)
    subspace_hist = tel.histogram("parallel.shard_subspace_attempts")
    for outcome in outcomes:
        subspace_hist.record(outcome.gap_attempts)
    if errors:
        raise errors[0]
    failed = [o for o in outcomes if o.status == "error"]
    if failed:
        raise RuntimeError(
            f"gap shard worker failed on prefix {failed[0].prefix}: "
            f"{failed[0].error}")
    total_attempts = sum(o.gap_attempts for o in outcomes)
    chosen = _choose_outcome(outcomes)
    # replay the chosen decision vector in-process: full result (terms,
    # constraints, model) without shipping terms across processes
    with T.term_scope(reuse_active=True):
        engine = ShepherdedSymex(module, trace, failure,
                                 gap_decisions=list(chosen.gap_bits),
                                 solver_cache=solver_cache,
                                 **engine_kwargs)
        result = engine.run()
    result.gap_attempts = total_attempts
    if result.status != "diverged":
        telemetry.count("symex.gap_recoveries")
        tel.histogram("symex.gap_attempts").record(total_attempts)
        logger.debug("sharded gap recovery converged after %d replays "
                     "across %d shard tasks (%d stolen)", total_attempts,
                     len(outcomes), steals)
    else:
        telemetry.count("symex.gap_replays")
        result.divergence_reason += \
            f" (after {total_attempts} gap assignments)"
    return result


def measure_incremental_ab(workload_name: str = "sqlite-7be932d", *,
                           mapping_loss: float = 0.085,
                           shards: int = 4,
                           work_scale: int = 20,
                           steal: bool = False) -> Dict:
    """A/B the assumption-stack reuse on the sharded gap-recovery bench.

    Runs the same degraded trace through :func:`shard_gap_search` twice
    — ``incremental=False`` (every sibling attempt re-solved from
    scratch) then ``incremental=True`` (per-shard
    :class:`~repro.solver.incremental.AssumptionStack`) — each under a
    fresh telemetry registry, and totals the solver work actually
    charged (the ``solver.work_per_query`` histogram, workers' snapshots
    folded in).  Returns a JSON-ready dict with both legs and the
    relative ``solver_work_reduction``; correctness is part of the
    record (``verdicts_equal``/``models_equal`` — the two legs must
    agree bit for bit, incrementality is an optimization only).

    ``steal`` defaults *off* here (unlike the production scheduler):
    work stealing re-splits shard subspaces at timing-dependent points,
    which perturbs each shard's assumption-stack reuse run to run.  The
    static prefix fan-out makes both legs fully deterministic, so the
    measured reduction is reproducible.
    """
    from .symex.gaps import replay_with_gap_recovery

    workload = get_workload(workload_name)
    module = workload.fresh_module()
    occurrence = ProductionSite(workload.failing_env,
                                mapping_loss=mapping_loss,
                                per_cpu_buffers=True).run_once(module)
    kwargs = dict(work_limit=workload.work_limit * work_scale,
                  shards=shards, steal=steal)
    legs: Dict[str, Dict] = {}
    models: Dict[str, Optional[Dict]] = {}
    statuses: Dict[str, str] = {}
    for label, incremental in (("scratch", False), ("incremental", True)):
        registry = telemetry.Telemetry()
        started = time.perf_counter()
        with telemetry.scoped(registry):
            result = replay_with_gap_recovery(
                module, occurrence.trace, occurrence.failure,
                incremental=incremental, **kwargs)
        wall = time.perf_counter() - started
        snapshot = registry.snapshot()
        work = snapshot.get("histograms", {}).get(
            "solver.work_per_query", {})
        counters = snapshot.get("counters", {})
        legs[label] = {
            "status": result.status,
            "gap_attempts": result.gap_attempts,
            "wall_seconds": round(wall, 4),
            "solver_work": int(work.get("sum", 0)),
            "solver_queries": int(work.get("count", 0)),
            "reused_terms": int(counters.get(
                "solver.incremental.reused_terms", 0)),
        }
        models[label] = (result.model.assignment
                         if result.model is not None else None)
        statuses[label] = result.status
    scratch_work = legs["scratch"]["solver_work"]
    incremental_work = legs["incremental"]["solver_work"]
    reduction = (1.0 - incremental_work / scratch_work
                 if scratch_work else 0.0)
    return {
        "workload": workload_name,
        "mapping_loss": mapping_loss,
        "shards": shards,
        "gap_count": gap_count(occurrence.trace),
        "scratch": legs["scratch"],
        "incremental": legs["incremental"],
        "solver_work_reduction": round(reduction, 4),
        "verdicts_equal": statuses["scratch"] == statuses["incremental"],
        "models_equal": models["scratch"] == models["incremental"],
    }
