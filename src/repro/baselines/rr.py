"""rr-style full record/replay baseline (§5.3 comparison).

Records every non-deterministic event of an execution — all environment
stream reads (the syscall analog) and the scheduler parameters — and can
re-execute the program deterministically from the log.  Its runtime cost
is modelled per intercepted event (see ``repro.trace.overhead``), which
is why rr's overhead is 1–2 orders of magnitude above ER's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import ReproError
from ..interp.env import EnvEvent, Environment
from ..interp.failures import FailureInfo
from ..interp.interpreter import Interpreter, RunResult
from ..ir.module import Module


@dataclass
class RRRecording:
    """A full record/replay log: every non-deterministic event, in order."""

    events: List[EnvEvent]
    quantum: int
    failure: Optional[FailureInfo]
    instr_count: int

    @property
    def event_count(self) -> int:
        return len(self.events)

    def log_bytes(self) -> int:
        """Size of the recorded log (events + headers)."""
        return sum(len(e.data) + 16 for e in self.events)


class _ReplayEnvironment(Environment):
    """Serves recorded event data instead of live non-determinism."""

    def __init__(self, recording: RRRecording):
        super().__init__({}, quantum=recording.quantum)
        self._log = list(recording.events)
        self._cursor = 0

    def read(self, stream: str, size: int) -> bytes:
        if self._cursor >= len(self._log):
            raise ReproError("replay log exhausted")
        event = self._log[self._cursor]
        self._cursor += 1
        if event.stream != stream or len(event.data) != size:
            raise ReproError(
                f"replay divergence: expected {event.stream}[{len(event.data)}], "
                f"program asked for {stream}[{size}]")
        self.events.append(event)
        return event.data


class RRBaseline:
    """Record an execution; replay it bit-exactly."""

    def record(self, module: Module, env: Environment,
               max_steps: int = 20_000_000) -> RRRecording:
        result = Interpreter(module, env, max_steps=max_steps).run()
        return RRRecording(events=list(env.events), quantum=env.quantum,
                           failure=result.failure,
                           instr_count=result.instr_count)

    def replay(self, module: Module, recording: RRRecording,
               max_steps: int = 20_000_000) -> RunResult:
        env = _ReplayEnvironment(recording)
        return Interpreter(module, env, max_steps=max_steps).run()

    def replay_matches(self, module: Module,
                       recording: RRRecording) -> bool:
        result = self.replay(module, recording)
        if recording.failure is None:
            return result.failure is None
        return (result.failure is not None
                and result.failure.matches(recording.failure)
                and result.instr_count == recording.instr_count)
