"""Symbolic environment: non-determinism as fresh symbolic bytes.

Mirrors :class:`repro.interp.env.Environment`, but every byte read from a
stream (including the clock) becomes a fresh symbolic variable named
``stream#offset``.  The paper's extended POSIX model treats file content,
network packets and clock values the same way (§4).
"""

from __future__ import annotations

from typing import Dict, List

from ..solver import terms as T
from ..solver.model import input_var_name
from ..solver.terms import Term


class SymbolicEnvironment:
    """Produces symbolic input terms with stable per-byte names."""

    def __init__(self):
        self._cursors: Dict[str, int] = {}
        #: every var created, in creation order (for reporting)
        self.created: List[str] = []

    def read(self, stream: str, size: int) -> Term:
        """A ``size``-byte symbolic read: concat of fresh byte variables."""
        cursor = self._cursors.get(stream, 0)
        parts = []
        for i in range(size):
            name = input_var_name(stream, cursor + i)
            self.created.append(name)
            parts.append(T.var(name, 8))
        self._cursors[stream] = cursor + size
        return T.concat(parts)

    def bytes_consumed(self, stream: str) -> int:
        return self._cursors.get(stream, 0)
