"""Mini X.509 parser: MatrixSSL CVE-2014-1569 (stack buffer overrun).

The real bug: while verifying an X.509 certificate, an ASN.1
length field is trusted and a date string is copied into a fixed stack
buffer.  The mini parser walks TLV (tag/length/value) records; OID
records are interned into a hash table (write-chain fuel), and DATE
records are copied into a 16-byte stack buffer without validating the
length — a long date overruns the frame.

The certificate arrives on the ``tls`` stream.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from .base import Workload

OID_SLOTS = 32
DATE_BUF = 16

TAG_OID = 0x06
TAG_DATE = 0x17
TAG_INT = 0x02
TAG_END = 0x00


def build_matrixssl() -> Module:
    b = ModuleBuilder("matrixssl-2014-1569")
    b.global_("oid_table", OID_SLOTS * 8)

    # parse_date(len): the vulnerable copy into a 16-byte stack buffer
    f = b.function("parse_date", ["len"])
    f.block("entry")
    buf = f.alloca("datebuf", DATE_BUF)
    f.const(0, dest="%i")
    f.jmp("copy")
    f.block("copy")
    done = f.cmp("uge", "%i", "%len")
    f.br(done, "out", "body")
    f.block("body")
    ch = f.input("tls", 1, dest="%ch")
    p = f.gep(buf, "%i", 1)
    f.store(p, "%ch", 1)     # BUG: len is attacker-controlled, no check
    f.add("%i", 1, dest="%i")
    f.jmp("copy")
    f.block("out")
    f.ret(0)

    # parse_oid(len): hash the OID bytes into the table (chain fuel)
    f = b.function("parse_oid", ["len"])
    f.block("entry")
    f.const(0, dest="%h")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%len")
    f.br(done, "ins", "body")
    f.block("body")
    ch = f.input("tls", 1, dest="%ch")
    f.add("%h", "%ch", width=32, dest="%h")
    sh = f.shl("%h", 3, width=32)
    f.add("%h", sh, width=32, dest="%h")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("ins")
    slot = f.urem("%h", OID_SLOTS, dest="%slot")
    tbl = f.global_addr("oid_table")
    sp = f.gep(tbl, "%slot", 8)
    f.store(sp, "%h", 8)
    f.ret("%slot")

    # parse_int(len): consume an INTEGER value
    f = b.function("parse_int", ["len"])
    f.block("entry")
    f.const(0, dest="%acc")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", "%len")
    f.br(done, "out", "body")
    f.block("body")
    ch = f.input("tls", 1, dest="%ch")
    shl = f.shl("%acc", 8, dest="%acc")
    f.or_("%acc", "%ch", dest="%acc")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("out")
    # modular-exponentiation flavoured rounds: the RSA-verify stand-in
    f.const(0, dest="%k")
    f.jmp("verify")
    f.block("verify")
    vdone = f.cmp("uge", "%k", 48)
    f.br(vdone, "vout", "vbody")
    f.block("vbody")
    sq = f.mul("%acc", "%acc", width=32)
    f.add(sq, "%k", width=32, dest="%acc")
    f.add("%k", 1, dest="%k")
    f.jmp("verify")
    f.block("vout")
    f.ret("%acc")

    f = b.function("main", [])
    f.block("entry")
    f.jmp("tlv")
    f.block("tlv")
    tag = f.input("tls", 1, dest="%tag")
    is_end = f.cmp("eq", "%tag", TAG_END, width=8)
    f.br(is_end, "out", "len")
    f.block("len")
    length = f.input("tls", 1, dest="%len")
    is_oid = f.cmp("eq", "%tag", TAG_OID, width=8)
    f.br(is_oid, "oid", "chk_date")
    f.block("oid")
    capped = f.cmp("ule", "%len", 16, width=8)
    f.br(capped, "oid_go", "reject")
    f.block("oid_go")
    f.call("parse_oid", ["%len"])
    f.jmp("tlv")
    f.block("chk_date")
    is_date = f.cmp("eq", "%tag", TAG_DATE, width=8)
    f.br(is_date, "date", "chk_int")
    f.block("date")
    f.call("parse_date", ["%len"])   # no length validation: the CVE
    f.jmp("tlv")
    f.block("chk_int")
    is_int = f.cmp("eq", "%tag", TAG_INT, width=8)
    f.br(is_int, "int", "reject")
    f.block("int")
    small = f.cmp("ule", "%len", 8, width=8)
    f.br(small, "int_go", "reject")
    f.block("int_go")
    f.call("parse_int", ["%len"])
    f.jmp("tlv")
    f.block("reject")
    f.ret(1)
    f.block("out")
    f.ret(0)
    return b.build()


def _tlv(tag: int, value: bytes) -> bytes:
    return bytes((tag, len(value))) + value


def _failing_matrixssl(occurrence: int) -> Environment:
    rng = random.Random(300 + occurrence)
    oid = bytes(rng.randint(1, 127) for _ in range(6))
    serial = bytes(rng.randint(0, 255) for _ in range(4))
    long_date = bytes(rng.randint(0x30, 0x39) for _ in range(40))
    cert = (_tlv(TAG_OID, oid) + _tlv(TAG_INT, serial)
            + _tlv(TAG_DATE, long_date) + b"\x00")
    return Environment({"tls": cert})


def _benign_matrixssl(seed: int) -> Environment:
    rng = random.Random(seed)
    cert = bytearray()
    for _ in range(rng.randint(60, 90)):
        kind = rng.random()
        if kind < 0.4:
            cert += _tlv(TAG_OID, bytes(rng.randint(1, 127)
                                        for _ in range(rng.randint(3, 9))))
        elif kind < 0.7:
            cert += _tlv(TAG_INT, bytes(rng.randint(0, 255)
                                        for _ in range(rng.randint(1, 8))))
        else:
            cert += _tlv(TAG_DATE, b"20260705" + bytes(
                rng.randint(0x30, 0x39) for _ in range(5)))
    cert += b"\x00"
    return Environment({"tls": bytes(cert)})


def matrixssl_workloads():
    return [Workload(
        name="matrixssl-2014-1569", app="Matrixssl 4.0.1",
        bug_id="CVE-2014-1569",
        bug_type="Stack buffer overrun", multithreaded=False,
        expected_kind=FailureKind.OUT_OF_BOUNDS,
        build=build_matrixssl,
        failing_env=_failing_matrixssl, benign_env=_benign_matrixssl,
        bench_name="Official test",
        work_limit=600,
        paper_occurrences=6, paper_instrs=4_448_948)]
