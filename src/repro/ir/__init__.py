"""Miniature compiler IR: the substrate programs ER reproduces failures in.

Public surface:

* :class:`Module`, :class:`Function`, :class:`BasicBlock`,
  :class:`ProgramPoint`, :class:`GlobalObject` — program representation.
* :class:`ModuleBuilder` / :class:`FunctionBuilder` — Python construction API.
* :func:`parse_module` / :func:`format_module` — textual round-trip.
* :func:`verify_module` — static well-formedness checks.
* ``instructions`` — the instruction dataclasses.
"""

from . import instructions
from .builder import FunctionBuilder, ModuleBuilder
from .module import BasicBlock, Function, GlobalObject, Module, ProgramPoint
from .parser import parse_module
from .printer import format_instr, format_module
from .types import MASK64, WORD_BITS, bytes_le, int_le, mask, sign_extend, to_signed
from .verifier import verify_module

__all__ = [
    "instructions",
    "FunctionBuilder",
    "ModuleBuilder",
    "BasicBlock",
    "Function",
    "GlobalObject",
    "Module",
    "ProgramPoint",
    "parse_module",
    "format_instr",
    "format_module",
    "verify_module",
    "MASK64",
    "WORD_BITS",
    "mask",
    "to_signed",
    "sign_extend",
    "bytes_le",
    "int_le",
]
