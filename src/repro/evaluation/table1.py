"""Table 1: the 13-bug reproduction study.

For every workload, run the full iterative reconstruction against its
simulated production site and report the columns of the paper's Table 1:
bug type, multithreadedness, program size, failing-execution length,
occurrences needed, and total shepherded-symbolic-execution time — plus
offline-cost extras (constraint-graph size, recorded bytes).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..core import ExecutionReconstructor, ProductionSite
from ..core.report import ReconstructionReport
from ..workloads import Workload, all_workloads
from .formatting import render_table


@dataclass
class Table1Row:
    name: str
    app: str
    bug_type: str
    multithreaded: bool
    static_instrs: int          # the 'LoC' analog of the mini app
    failing_instrs: int         # #Instr of the last failing execution
    occurrences: int            # #Occur
    paper_occurrences: int
    symbex_wall_seconds: float
    symbex_modelled_seconds: float
    recorded_bytes: int
    max_graph_nodes: int
    verified: bool
    bench_name: str
    report: Optional[ReconstructionReport] = field(default=None, repr=False)


@dataclass
class Table1Result:
    rows: List[Table1Row]

    @property
    def all_reproduced(self) -> bool:
        return all(r.verified for r in self.rows)

    @property
    def mean_occurrences(self) -> float:
        return sum(r.occurrences for r in self.rows) / len(self.rows)

    @property
    def single_occurrence_count(self) -> int:
        return sum(1 for r in self.rows if r.occurrences == 1)

    @property
    def max_graph_nodes(self) -> int:
        return max(r.max_graph_nodes for r in self.rows)

    def render(self) -> str:
        headers = ["Application-BugID", "Bug Type", "MT", "IR-Instr",
                   "#Instr(fail)", "#Occur", "(paper)", "Symbex Time",
                   "Benchmark"]
        rows = []
        for r in self.rows:
            rows.append([
                r.name, r.bug_type, "Y" if r.multithreaded else "N",
                r.static_instrs, r.failing_instrs, r.occurrences,
                r.paper_occurrences,
                f"{r.symbex_modelled_seconds:.1f} s (model) / "
                f"{r.symbex_wall_seconds:.2f} s (wall)",
                r.bench_name,
            ])
        footer = (f"\nreproduced {sum(r.verified for r in self.rows)}/"
                  f"{len(self.rows)}; mean #Occur "
                  f"{self.mean_occurrences:.1f} (paper ~3.5); "
                  f"{self.single_occurrence_count} single-occurrence "
                  f"reproductions (paper: 2); largest constraint graph "
                  f"{self.max_graph_nodes} nodes (paper: ~40K)")
        return render_table(headers, rows,
                            "Table 1 — bugs reproduced by ER") + footer


def run_workload(workload: Workload) -> Table1Row:
    """Reconstruct one workload and collect its Table-1 row."""
    module = workload.fresh_module()
    reconstructor = ExecutionReconstructor(
        module, work_limit=workload.work_limit,
        max_occurrences=workload.max_occurrences)
    production = ProductionSite(workload.failing_env)
    started = time.perf_counter()
    report = reconstructor.reconstruct(production)
    wall = time.perf_counter() - started
    last = report.iterations[-1] if report.iterations else None
    return Table1Row(
        name=workload.name,
        app=workload.app,
        bug_type=workload.bug_type,
        multithreaded=workload.multithreaded,
        static_instrs=module.instruction_count(),
        failing_instrs=last.instr_count if last else 0,
        occurrences=report.occurrences,
        paper_occurrences=workload.paper_occurrences,
        symbex_wall_seconds=report.total_symex_wall_seconds,
        symbex_modelled_seconds=report.total_symex_modelled_seconds,
        recorded_bytes=report.total_recorded_bytes,
        max_graph_nodes=max((i.graph_nodes for i in report.iterations),
                            default=0),
        verified=report.success and report.verified,
        bench_name=workload.bench_name,
        report=report,
    )


def _run_workload_row(name: str) -> Table1Row:
    """Pool-worker body: reconstruct one workload by name.

    Drops the full report before crossing the process boundary — the
    table only needs the scalar columns, and the report holds module and
    test-case objects that are expensive (and needless) to pickle.
    """
    from ..workloads import get_workload

    row = run_workload(get_workload(name))
    row.report = None
    return row


def run_table1(names: Optional[List[str]] = None,
               parallel: int = 1) -> Table1Result:
    """Regenerate Table 1 (optionally for a subset of workloads).

    ``parallel > 1`` fans the workloads out over a process pool; rows
    come back in registry order either way, but pooled rows carry no
    ``report`` (see :func:`_run_workload_row`).
    """
    selected = [w for w in all_workloads()
                if names is None or w.name in names]
    if parallel > 1 and len(selected) > 1:
        # the shared persistent pool (repro.parallel): repeated table
        # regenerations reuse already-spawned workers, and worker
        # telemetry folds into the caller's registry instead of being
        # dropped on the executor floor
        from .. import telemetry
        from ..parallel import get_pool

        tel = telemetry.get()
        pool = get_pool(min(parallel, len(selected)))
        job = pool.begin_job({}, context=tel.trace_context())
        rows_by_task: dict = {}
        errors: List[BaseException] = []
        try:
            for workload in selected:
                job.submit(_run_workload_row, workload.name)
            remaining = len(selected)
            while remaining:
                kind, task_id, body = job.next_message()
                if kind == "split":
                    continue
                remaining -= 1
                if kind == "err":
                    errors.append(RuntimeError(
                        f"table-1 row for "
                        f"{selected[task_id].name!r} failed: {body}"))
                    continue
                rows_by_task[task_id] = body
        finally:
            snapshots, _ = job.finish()
            tel.absorb(telemetry.merge_snapshots(snapshots))
        if errors:
            raise errors[0]
        rows = [rows_by_task[i] for i in range(len(selected))]
    else:
        rows = [run_workload(workload) for workload in selected]
    return Table1Result(rows)
