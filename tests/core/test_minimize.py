"""Test-case minimization (ddmin over generated inputs)."""

import pytest

from repro.core import ExecutionReconstructor, ProductionSite
from repro.core.minimize import ddmin, minimize_test_case
from repro.core.report import TestCase
from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder


class TestDdmin:
    def test_single_culprit_byte(self):
        data = b"aaaaXaaaa"
        result = ddmin(data, lambda c: b"X" in c)
        assert result == b"X"

    def test_pair_of_culprits(self):
        data = b"..A.....B.."
        result = ddmin(data, lambda c: b"A" in c and b"B" in c)
        assert set(result) >= {ord("A"), ord("B")}
        assert len(result) <= 4

    def test_requires_failing_input(self):
        with pytest.raises(AssertionError):
            ddmin(b"ok", lambda c: False)

    def test_order_sensitive_predicate(self):
        result = ddmin(b"zzBzzAzz", lambda c: c.find(b"B") >= 0
                       and c.find(b"B") < c.find(b"A"))
        assert result == b"BA"

    def test_already_minimal(self):
        assert ddmin(b"X", lambda c: c == b"X") == b"X"


def _service_module():
    """Processes 3-byte requests; crashes on a request with tag 0xEE."""
    b = ModuleBuilder("svc")
    f = b.function("main", [])
    f.block("entry")
    f.jmp("req")
    f.block("req")
    tag = f.input("net", 1, dest="%tag")
    end = f.cmp("eq", "%tag", 0, width=8)
    f.br(end, "out", "chk")
    f.block("chk")
    f.input("net", 1)
    f.input("net", 1)
    bad = f.cmp("eq", "%tag", 0xEE, width=8)
    f.br(bad, "boom", "req")
    f.block("boom")
    f.abort("evil request")
    f.block("out")
    f.ret(0)
    return b.build()


class TestMinimizeTestCase:
    def _reconstruct(self):
        module = _service_module()
        benign = bytes([1, 2, 3] * 6)
        crash = bytes([0xEE, 7, 7])

        def env(occ):
            return Environment({"net": benign + crash + b"\x00"})

        er = ExecutionReconstructor(module)
        report = er.reconstruct(ProductionSite(env))
        assert report.success
        return module, report

    def test_drops_benign_prefix(self):
        module, report = self._reconstruct()
        minimized = minimize_test_case(module, report.test_case,
                                       report.failure)
        original_len = len(report.test_case.streams["net"])
        new_len = len(minimized.streams["net"])
        assert new_len < original_len
        assert new_len <= 3  # just the evil request (terminator optional)

    def test_minimized_still_reproduces(self):
        module, report = self._reconstruct()
        minimized = minimize_test_case(module, report.test_case,
                                       report.failure)
        result = Interpreter(module, minimized.environment()).run()
        assert result.failure is not None
        assert result.failure.matches(report.failure)

    def test_zero_normalization(self):
        module, report = self._reconstruct()
        minimized = minimize_test_case(module, report.test_case,
                                       report.failure)
        data = minimized.streams["net"]
        # payload bytes after the evil tag normalize to zero
        assert all(byte in (0, 0xEE) for byte in data)

    def test_description_marked(self):
        module, report = self._reconstruct()
        minimized = minimize_test_case(module, report.test_case,
                                       report.failure)
        assert "minimized" in minimized.description

    def test_on_table1_workload(self):
        from repro.workloads import get_workload

        workload = get_workload("bash-108885")
        er = ExecutionReconstructor(workload.fresh_module(),
                                    work_limit=workload.work_limit)
        report = er.reconstruct(ProductionSite(workload.failing_env))
        minimized = minimize_test_case(workload.fresh_module(),
                                       report.test_case, report.failure)
        assert len(minimized.streams["sh"]) <= \
            len(report.test_case.streams["sh"])
