"""The evaluation workloads: 13 Table-1 bugs plus the od/pr case study."""

from .base import Workload
from .coreutils import coreutils_modules
from .registry import all_workloads, get_workload, workload_names

__all__ = [
    "Workload",
    "coreutils_modules",
    "all_workloads",
    "get_workload",
    "workload_names",
]
