"""Satisfying assignments and their conversion back to program inputs."""

from __future__ import annotations

from typing import Dict

from ..errors import SolverError
from .budget import UnlimitedBudget
from .evaluator import tv_eval
from .terms import Term

#: Separator in input-byte variable names: ``stream#offset``.
VAR_SEP = "#"


def input_var_name(stream: str, offset: int) -> str:
    """Canonical name of the symbolic variable for one input byte."""
    return f"{stream}{VAR_SEP}{offset}"


def parse_var_name(name: str):
    """Inverse of :func:`input_var_name`; returns (stream, offset) or None."""
    stream, sep, offset = name.rpartition(VAR_SEP)
    if not sep or not offset.isdigit():
        return None
    return stream, int(offset)


class Model:
    """A concrete assignment for every symbolic input variable."""

    def __init__(self, assignment: Dict[str, int]):
        self.assignment = dict(assignment)

    def __getitem__(self, name: str) -> int:
        return self.assignment.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self.assignment

    def __len__(self) -> int:
        return len(self.assignment)

    def eval_term(self, term: Term) -> int:
        """Concrete value of ``term`` under this model."""
        value = tv_eval(term, self.assignment, UnlimitedBudget())
        if value is None:
            raise SolverError(f"model does not determine {term!r}")
        return value

    def streams(self) -> Dict[str, bytes]:
        """Reassemble input streams from per-byte variables.

        Bytes never read symbolically default to zero; the result is the
        generated test case's environment content.
        """
        sizes: Dict[str, int] = {}
        values: Dict[str, Dict[int, int]] = {}
        for name, value in self.assignment.items():
            parsed = parse_var_name(name)
            if parsed is None:
                continue
            stream, offset = parsed
            sizes[stream] = max(sizes.get(stream, 0), offset + 1)
            values.setdefault(stream, {})[offset] = value & 0xFF
        return {
            stream: bytes(values[stream].get(i, 0) for i in range(size))
            for stream, size in sizes.items()
        }

    def __repr__(self):
        return f"Model({len(self.assignment)} vars)"
