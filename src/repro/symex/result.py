"""Result types for shepherded symbolic execution."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ir.module import ProgramPoint
from ..solver.model import Model
from ..solver.terms import Term


@dataclass
class SymexStats:
    """Bookkeeping for one shepherded run (feeds Fig. 5 / Table 1)."""

    instrs_executed: int = 0
    solver_calls: int = 0
    solver_work: int = 0
    wall_seconds: float = 0.0
    #: (instructions executed, cumulative solver work) samples
    progress: List[Tuple[int, int]] = field(default_factory=list)

    def modelled_seconds(self) -> float:
        from ..solver.budget import WORK_PER_SECOND

        return self.solver_work / WORK_PER_SECOND


@dataclass
class StallInfo:
    """Everything key-data-value selection needs after a solver timeout."""

    #: path constraints accumulated up to the stall
    constraints: List[Term]
    #: the terms of the query that timed out (reads, bounds checks)
    stall_terms: List[Term]
    #: write-chain tops of every object with symbolic stores
    chains: List[Term]
    #: dynamic execution count per program point (recording cost input)
    exec_counts: Counter
    #: solver work spent by the stalling query
    work_spent: int = 0
    #: where symbolic execution stalled
    point: Optional[ProgramPoint] = None
    #: (repr(term), value) of the most recent concretization pick, when
    #: the stall may stem from it (retry protocol for Fig.-5 drivers)
    concretization_conflict: Optional[Tuple[str, int]] = None


@dataclass
class SymexResult:
    """Outcome of one shepherded symbolic execution."""

    status: str  # 'completed' | 'stalled' | 'diverged'
    constraints: List[Term] = field(default_factory=list)
    model: Optional[Model] = None
    stall: Optional[StallInfo] = None
    stats: SymexStats = field(default_factory=SymexStats)
    exec_counts: Counter = field(default_factory=Counter)
    divergence_reason: str = ""
    #: index of the trace chunk being replayed when divergence hit
    diverged_chunk: int = -1
    #: outcomes chosen for lost TNT bits at *symbolic* branches, in
    #: consumption order (concrete branches recover their bit for free)
    gap_bits: List[bool] = field(default_factory=list)
    #: replays a gap-recovery driver needed to find this result
    gap_attempts: int = 1

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def stalled(self) -> bool:
        return self.status == "stalled"
