"""Static check: telemetry names in ``src/`` follow the dotted scheme.

Every literal name passed to ``telemetry.span(...)``, ``count(...)``,
``event(...)``, ``counter(...)``, ``gauge(...)``, or ``histogram(...)``
— on a receiver named ``telemetry``, ``tel``, or ``registry`` — must
match the ``layer.verb`` convention: lowercase dotted segments of
``[a-z0-9_]``, at least two segments deep (``solver.cache.hits``,
``parallel.queue_wait_seconds``).  A flat name renders unusably in
``repro stats`` groupings and breaks the OpenMetrics prefix mapping,
so the convention is enforced here rather than in review.
"""

import ast
import pathlib
import re

SRC = pathlib.Path(__file__).parent.parent / "src"

#: receivers whose telemetry-ish methods we check (module or registry)
RECEIVERS = {"telemetry", "tel", "registry"}
METHODS = {"span", "count", "event", "counter", "gauge", "histogram"}
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


def _literal_metric_calls(tree):
    """(method, name-literal, lineno) for every checked call site."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in RECEIVERS
                and func.attr in METHODS):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value,
                                                          str):
            yield func.attr, first.value, node.lineno


def test_all_telemetry_names_are_dotted():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for method, name, lineno in _literal_metric_calls(tree):
            if not NAME_RE.match(name):
                offenders.append(
                    f"{path.relative_to(SRC)}:{lineno}: "
                    f"{method}({name!r})")
    assert not offenders, (
        "telemetry names must be dotted layer.verb identifiers:\n  "
        + "\n  ".join(offenders))


def test_the_checker_sees_real_call_sites():
    """Guard against the AST walk silently matching nothing."""
    found = 0
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        found += sum(1 for _ in _literal_metric_calls(tree))
    assert found > 50, f"only {found} telemetry call sites found"


def test_the_pattern_rejects_flat_and_uppercase_names():
    assert NAME_RE.match("solver.cache.hits")
    assert NAME_RE.match("parallel.queue_wait_seconds")
    assert not NAME_RE.match("reconstruct")        # flat
    assert not NAME_RE.match("Solver.hits")        # uppercase
    assert not NAME_RE.match("solver.")            # dangling dot
    assert not NAME_RE.match("solver..hits")       # empty segment
