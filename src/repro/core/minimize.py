"""Test-case minimization: delta debugging on ER's generated inputs.

ER guarantees its generated test case follows the recorded control flow,
which can make it long (it replays the whole production session, benign
requests included).  For debugging, a *shorter* input that still triggers
the same failure signature is often preferable — the classic ddmin
problem (Zeller & Hildebrandt, cited by the paper as input
simplification).

:func:`minimize_test_case` shrinks each stream with ddmin (the failure
signature, not the control flow, is the oracle: minimization may legally
leave the recorded path) and then normalizes surviving bytes toward
zero.  Every candidate is validated by a full replay.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..interp.env import Environment
from ..interp.failures import FailureInfo
from ..interp.interpreter import Interpreter
from ..ir.module import Module
from .report import TestCase


def _reproduces(module: Module, streams: Dict[str, bytes], quantum: int,
                failure: FailureInfo, max_steps: int) -> bool:
    env = Environment(dict(streams), quantum=quantum)
    result = Interpreter(module, env, max_steps=max_steps).run()
    return result.failure is not None and result.failure.matches(failure)


def ddmin(data: bytes, still_fails: Callable[[bytes], bool],
          max_tests: int = 2000) -> bytes:
    """Classic ddmin over a byte string.

    ``still_fails(candidate)`` is the oracle; the input itself must fail.
    """
    assert still_fails(data), "ddmin needs a failing input"
    granularity = 2
    tests = 0
    while len(data) >= 2:
        chunk = max(1, len(data) // granularity)
        reduced = False
        start = 0
        while start < len(data):
            candidate = data[:start] + data[start + chunk:]
            tests += 1
            if tests > max_tests:
                return data
            if candidate != data and still_fails(candidate):
                data = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                # retry at the same offset: the next chunk shifted here
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(data), granularity * 2)
    return data


def _zero_normalize(data: bytes, still_fails: Callable[[bytes], bool],
                    max_tests: int = 512) -> bytes:
    """Second pass: flip surviving bytes to zero where possible."""
    out = bytearray(data)
    tests = 0
    for index in range(len(out)):
        if out[index] == 0:
            continue
        tests += 1
        if tests > max_tests:
            break
        candidate = bytes(out[:index]) + b"\x00" + bytes(out[index + 1:])
        if still_fails(candidate):
            out[index] = 0
    return bytes(out)


def minimize_test_case(module: Module, test_case: TestCase,
                       failure: FailureInfo, *,
                       max_steps: int = 20_000_000,
                       normalize: bool = True) -> TestCase:
    """A smaller test case that reproduces the same failure signature."""
    streams = {name: bytes(data)
               for name, data in test_case.streams.items()}

    for name in sorted(streams):
        def oracle(candidate: bytes, _name=name) -> bool:
            trial = dict(streams)
            trial[_name] = candidate
            return _reproduces(module, trial, test_case.quantum, failure,
                               max_steps)

        if not oracle(streams[name]):
            # this stream interacts with others in a way the per-stream
            # oracle cannot see; leave it alone
            continue
        reduced = ddmin(streams[name], oracle)
        if normalize:
            reduced = _zero_normalize(reduced, oracle)
        streams[name] = reduced

    minimized = TestCase(streams=streams, quantum=test_case.quantum,
                         description=test_case.description
                         + " (minimized)")
    assert _reproduces(module, minimized.streams, minimized.quantum,
                       failure, max_steps)
    return minimized
