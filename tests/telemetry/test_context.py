"""Trace identity: span ids, cross-registry handoff, clock alignment."""

import pickle
import time

from repro.telemetry import MemorySink, Telemetry, TraceContext, new_trace_id
from repro.telemetry.context import TraceContext as ContextAlias


class TestTraceId:
    def test_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for tid in ids:
            int(tid, 16)
            assert len(tid) == 16

    def test_fresh_registry_starts_fresh_trace(self):
        a, b = Telemetry(), Telemetry()
        assert a.trace_id != b.trace_id


class TestSpanIdentity:
    def test_spans_get_unique_ids_and_parent_links(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        with tel.span("outer"):
            with tel.span("inner"):
                pass
            with tel.span("sibling"):
                pass
        by_name = {e["name"]: e for e in sink.events}
        outer, inner, sib = (by_name["outer"], by_name["inner"],
                             by_name["sibling"])
        assert len({outer["span_id"], inner["span_id"],
                    sib["span_id"]}) == 3
        assert inner["parent_id"] == outer["span_id"]
        assert sib["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert outer["trace_id"] == inner["trace_id"] == tel.trace_id

    def test_events_carry_pid(self):
        import os

        sink = MemorySink()
        tel = Telemetry(sink)
        tel.event("e")
        assert sink.events[0]["pid"] == os.getpid()


class TestHandoff:
    def test_context_is_picklable(self):
        ctx = TraceContext(trace_id="abc", span_id="1.2",
                           wall_origin=123.0)
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx
        assert ContextAlias is TraceContext

    def test_round_trips_via_dict(self):
        ctx = TraceContext(trace_id="abc", span_id=None, wall_origin=1.5)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_worker_joins_parent_trace(self):
        parent_sink = MemorySink()
        parent = Telemetry(parent_sink)
        with parent.span("handoff"):
            ctx = parent.trace_context()
        worker_sink = MemorySink()
        worker = Telemetry(worker_sink, context=ctx)
        with worker.span("child"):
            pass
        assert worker.trace_id == parent.trace_id
        child = worker_sink.events[0]
        handoff = parent_sink.events[0]
        # the worker's ROOT span parents on the handoff span, across
        # the (simulated) process boundary
        assert child["parent_id"] == handoff["span_id"]
        assert ctx.span_id == handoff["span_id"]

    def test_context_without_open_span_inherits_upward(self):
        parent = Telemetry(MemorySink())
        with parent.span("stage"):
            ctx = parent.trace_context()
        worker = Telemetry(context=ctx)
        # no span open on the worker: its own handoff context falls
        # back to the inherited span id, so a grandchild still links
        grandchild_ctx = worker.trace_context()
        assert grandchild_ctx.trace_id == parent.trace_id
        assert grandchild_ctx.span_id == ctx.span_id


class TestClockAlignment:
    def test_worker_ts_lands_after_parent_handoff(self):
        parent_sink = MemorySink()
        parent = Telemetry(parent_sink)
        parent.event("before")
        time.sleep(0.02)
        ctx = parent.trace_context()
        worker_sink = MemorySink()
        worker = Telemetry(worker_sink, context=ctx)
        worker.event("after")
        before_ts = parent_sink.events[0]["ts"]
        after_ts = worker_sink.events[0]["ts"]
        # the worker clock is rebased onto the parent timeline: its
        # first event cannot precede a parent event emitted earlier
        assert after_ts > before_ts
        assert after_ts >= 0.02

    def test_chained_handoffs_share_one_origin(self):
        root = Telemetry()
        mid = Telemetry(context=root.trace_context())
        leaf_ctx = mid.trace_context()
        # batch -> reconstruction -> shard: wall_origin re-expresses the
        # ROOT origin each hop, so all levels share one zero point
        assert abs(leaf_ctx.wall_origin
                   - root.trace_context().wall_origin) < 0.5

    def test_root_registry_has_zero_base(self):
        sink = MemorySink()
        tel = Telemetry(sink)
        tel.event("now")
        assert sink.events[0]["ts"] < 5.0
