"""DiskSolverCache: persistence, cross-handle sharing, subsumption.

The property tests pin the soundness arguments the subsumption tiers
rest on: a cached *infeasible subset* may force a query infeasible, a
cached *superset model* may answer it feasible, and nothing else — in
particular a poisoned or mismatched cache entry must never be served
for a different key, and a poisoned *model* must never come back from
``solve`` (the solver re-verifies models before reuse).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import (DiskSolverCache, Solver, SolverCache,
                          term_digest)
from repro.solver import terms as T


@pytest.fixture(autouse=True)
def fresh_terms():
    with T.term_scope():
        yield


def _c(name, value):
    return T.cmp("eq", T.var(name), T.const(value), 8)


class TestDiskStore:
    def test_roundtrip_across_handles(self, tmp_path):
        first = DiskSolverCache(tmp_path)
        first.store(["d1", "d2"], True, model={"a": 5})
        second = DiskSolverCache(tmp_path)  # fresh handle, same file
        feasible, model, kind = second.lookup(["d2", "d1"])
        assert (feasible, model, kind) == (True, {"a": 5}, "exact")

    def test_refresh_sees_other_writers(self, tmp_path):
        reader = DiskSolverCache(tmp_path)
        writer = DiskSolverCache(tmp_path)
        assert reader.lookup(["x"]) is None
        writer.store(["x"], False)
        assert reader.lookup(["x"])[:2] == (False, None)

    def test_subset_infeasible_forces_superset(self, tmp_path):
        cache = DiskSolverCache(tmp_path)
        cache.store(["d1", "d2"], False)
        feasible, model, kind = cache.lookup(["d1", "d2", "d3"])
        assert (feasible, kind) == (False, "subsume")

    def test_superset_model_answers_subset(self, tmp_path):
        cache = DiskSolverCache(tmp_path)
        cache.store(["d1", "d2", "d3"], True, model={"a": 1})
        feasible, model, kind = cache.lookup(["d1", "d3"])
        assert (feasible, model, kind) == (True, {"a": 1}, "subsume")

    def test_disjoint_keys_not_served(self, tmp_path):
        # the poisoned-cache property: results keyed on other constraint
        # sets must not leak to queries they don't subsume
        cache = DiskSolverCache(tmp_path)
        cache.store(["d1", "d2"], False)          # infeasible, not subset
        cache.store(["d9"], True, model={"a": 1})  # feasible, not superset
        assert cache.lookup(["d1", "d3"]) is None
        assert cache.lookup(["d2"]) is None or \
            cache.lookup(["d2"])[2] != "exact"

    def test_infeasible_subset_never_from_feasible(self, tmp_path):
        cache = DiskSolverCache(tmp_path)
        cache.store(["d1"], True)
        assert cache.lookup(["d1", "d2"]) is None

    def test_corrupt_lines_skipped(self, tmp_path):
        cache = DiskSolverCache(tmp_path)
        cache.store(["d1"], True)
        with open(cache.path, "a", encoding="utf-8") as fh:
            fh.write("{not json}\n")
            fh.write(json.dumps({"k": ["d2"], "f": False}) + "\n")
        fresh = DiskSolverCache(tmp_path)
        assert fresh.lookup(["d1"])[0] is True
        assert fresh.lookup(["d2"])[0] is False

    def test_torn_tail_tolerated(self, tmp_path):
        cache = DiskSolverCache(tmp_path)
        cache.store(["d1"], True)
        with open(cache.path, "a", encoding="utf-8") as fh:
            fh.write('{"k": ["d3"], "f": true')  # no newline: torn write
        fresh = DiskSolverCache(tmp_path)
        assert fresh.lookup(["d1"])[0] is True
        assert fresh.lookup(["d3"]) is None

    def test_empty_key_ignored(self, tmp_path):
        cache = DiskSolverCache(tmp_path)
        cache.store([], True)
        assert len(cache) == 0
        assert cache.lookup([]) is None

    def test_stats_shape(self, tmp_path):
        cache = DiskSolverCache(tmp_path)
        cache.store(["d1"], True)
        cache.lookup(["d1"])
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["hits"] == 1
        assert stats["appended"] == 1

    def test_hits_split_per_tier(self, tmp_path):
        # regression: one folded `hits` counter misattributed the
        # disk tier's answers in `repro stats`; each tier now counts
        # apart and `hits` stays the backward-compatible sum
        cache = DiskSolverCache(tmp_path)
        cache.store(["d1"], False)
        cache.store_values(["d2"], "t", 4, [1], True, None,
                           [{"a": 1}])
        assert cache.lookup(["d1"])[2] == "exact"
        assert cache.lookup(["d1", "dx"])[2] == "subsume"
        assert cache.lookup_values(["d2"], "t", 4) is not None
        stats = cache.stats()
        assert stats["hits_exact"] == 1
        assert stats["hits_subsume"] == 1
        assert stats["hits_values"] == 1
        assert stats["hits"] == 3 and cache.hits == 3


class TestTwoWriters:
    """Concurrent handles appending to one file must absorb each other.

    The regression pinned here: ``store`` used to jump its read offset
    to end-of-file after appending, silently skipping every line other
    handles had written since the last refresh — ``refresh`` then
    early-returned forever (file size <= offset), so those entries were
    lost to this handle for its whole lifetime.
    """

    def _lines(self, cache):
        with open(cache.path, encoding="utf-8") as fh:
            return fh.read().splitlines()

    def test_store_absorbs_other_writers_appends(self, tmp_path):
        a = DiskSolverCache(tmp_path)
        b = DiskSolverCache(tmp_path)  # offset 0, file empty
        a.store(["k1"], True, model={"x": 1})
        b.store(["k2"], False)  # must index k1 while holding the lock
        feasible, model, kind = b.lookup(["k1"])
        assert (feasible, model, kind) == (True, {"x": 1}, "exact")
        assert a.lookup(["k2"])[:2] == (False, None)
        assert len(self._lines(a)) == 2

    def test_interleaved_writers_converge(self, tmp_path):
        a = DiskSolverCache(tmp_path)
        b = DiskSolverCache(tmp_path)
        for i in range(6):
            writer = a if i % 2 == 0 else b
            writer.store([f"k{i}"], i % 3 != 0)
        for handle in (a, b):
            for i in range(6):
                feasible, _model, kind = handle.lookup([f"k{i}"])
                assert (feasible, kind) == (i % 3 != 0, "exact")
        assert len(self._lines(a)) == 6
        assert a.appended == b.appended == 3

    def test_duplicate_store_after_absorb_skips_append(self, tmp_path):
        a = DiskSolverCache(tmp_path)
        b = DiskSolverCache(tmp_path)
        a.store(["dup"], True)
        b.store(["dup"], True)  # absorbed under the lock: no second line
        assert b.appended == 0
        assert len(self._lines(a)) == 1
        assert b.lookup(["dup"])[::2] == (True, "exact")


class TestTornTailAppend:
    """Appending past a crashed writer's torn fragment.

    Regression (two bugs in one append path): the fragment and the new
    line used to concatenate into a single corrupt line — losing the
    entry on disk for every other handle — and because the writer's
    read offset could not advance past the fragment, its own entry was
    absorbed locally *and* re-absorbed from disk on a later refresh,
    duplicating it into the bounded ``_infeasible_sets``/``_models``
    scan windows and double-counting stats.  The append path now
    terminates the fragment with a newline first (the entry stays
    parseable on its own) and remembers its own line so the eventual
    re-read of that region skips it.
    """

    def _torn(self, cache, fragment='{"k": ["torn"], "f": fal'):
        with open(cache.path, "a", encoding="utf-8") as fh:
            fh.write(fragment)  # a crashed writer's partial line

    def test_entry_durable_past_torn_fragment(self, tmp_path):
        a = DiskSolverCache(tmp_path)
        b = DiskSolverCache(tmp_path)
        a.store(["k0"], True)
        self._torn(a)
        b.store(["k1"], False)  # second writer appends past the tear
        fresh = DiskSolverCache(tmp_path)
        assert fresh.lookup(["k0"])[0] is True
        assert fresh.lookup(["k1"])[:2] == (False, None)
        assert fresh.lookup(["torn"]) is None

    def test_no_double_indexing_after_refresh(self, tmp_path):
        a = DiskSolverCache(tmp_path)
        a.store(["k0"], False)
        self._torn(a)
        a.store(["k1"], False)
        assert a.stats()["infeasible_sets"] == 2
        a.refresh()  # used to re-absorb k1 into the deque
        a.refresh()
        stats = a.stats()
        assert stats["infeasible_sets"] == 2
        assert stats["entries"] == 2
        assert a.appended == 2

    def test_model_window_not_double_filled(self, tmp_path):
        a = DiskSolverCache(tmp_path)
        b = DiskSolverCache(tmp_path)
        a.store(["k0"], True, model={"x": 1})
        self._torn(b, '{"k": ["t1"], "f"')
        b.store(["k1"], True, model={"y": 2})
        b.refresh()
        a.refresh()
        for handle in (a, b):
            assert handle.stats()["models"] == 2


class TestPersistentTier:
    def test_fresh_session_warm_starts_from_disk(self, tmp_path):
        cs = [_c("a", 5)]
        cold = SolverCache(persistent=DiskSolverCache(tmp_path))
        assert Solver(cache=cold).is_feasible(cs)
        assert cold.disk_hits == 0
        warm = SolverCache(persistent=DiskSolverCache(tmp_path))
        assert Solver(cache=warm).is_feasible(cs)
        assert warm.disk_hits >= 1
        assert warm.misses == 0

    def test_solve_reuses_verified_disk_model(self, tmp_path):
        cs = [_c("a", 5), _c("b", 7)]
        cold = SolverCache(persistent=DiskSolverCache(tmp_path))
        first = Solver(cache=cold).solve(cs)
        warm = SolverCache(persistent=DiskSolverCache(tmp_path))
        second = Solver(cache=warm).solve(cs)
        assert second.assignment == first.assignment
        assert warm.subsumption_hits + warm.disk_hits >= 1

    def test_poisoned_model_not_returned_by_solve(self, tmp_path):
        # a cache file claiming a *wrong* model must not poison solve:
        # the model fails re-verification and the search runs instead
        cs = [_c("a", 5)]
        digests = sorted(term_digest(c) for c in cs)
        disk = DiskSolverCache(tmp_path)
        disk.store(digests, True, model={"a": 99})
        cache = SolverCache(persistent=DiskSolverCache(tmp_path))
        model = Solver(cache=cache).solve(cs)
        assert model["a"] == 5

    def test_memory_subsumption_subset_infeasible(self):
        cache = SolverCache()
        solver = Solver(cache=cache)
        assert not solver.is_feasible([_c("a", 1), _c("a", 2)])
        # strict superset answered without a search
        calls_before = cache.misses
        assert not solver.is_feasible([_c("a", 1), _c("a", 2), _c("b", 3)])
        assert cache.subsumption_hits == 1
        assert cache.misses == calls_before


DIGEST = st.sampled_from([f"d{i}" for i in range(8)])
KEY = st.frozensets(DIGEST, min_size=1, max_size=5)


class TestSubsumptionProperties:
    @settings(max_examples=60, deadline=None)
    @given(stored=KEY, query=KEY)
    def test_infeasible_only_served_for_supersets(self, tmp_path_factory,
                                                  stored, query):
        cache = DiskSolverCache(tmp_path_factory.mktemp("dc"))
        cache.store(stored, False)
        found = cache.lookup(query)
        if stored <= query:
            assert found is not None and found[0] is False
        else:
            assert found is None  # wrong answers never served

    @settings(max_examples=60, deadline=None)
    @given(stored=KEY, query=KEY)
    def test_model_only_served_for_subsets(self, tmp_path_factory,
                                           stored, query):
        cache = DiskSolverCache(tmp_path_factory.mktemp("dc"))
        cache.store(stored, True, model={"a": 1})
        found = cache.lookup(query)
        if query <= stored:
            feasible, model, _kind = found
            assert feasible is True and model == {"a": 1}
        else:
            assert found is None

    @settings(max_examples=30, deadline=None)
    @given(values=st.dictionaries(st.sampled_from(["a", "b", "c"]),
                                  st.integers(0, 255),
                                  min_size=1, max_size=3),
           extra=st.sampled_from(["a", "b", "c"]))
    def test_superset_model_satisfies_subset_query(self, values, extra):
        # solve the full random conjunction, then ask about any subset:
        # the recorded superset model must answer it feasibly
        with T.term_scope():
            cache = SolverCache()
            solver = Solver(cache=cache)
            full = [_c(name, v) for name, v in sorted(values.items())]
            solver.solve(full)
            subset = [c for c in full if extra not in c.free_vars()]
            if subset and len(subset) < len(full):
                assert solver.is_feasible(subset)
                assert cache.subsumption_hits + cache.model_probe_hits >= 1


class TestEnumerationPersistence:
    """``feasible_values`` results survive sessions — after re-proof.

    Enumerations persist with one witness model per value; a fresh
    session re-verifies every witness against its live constraints
    before serving the enumeration, so a poisoned file degrades to a
    cache miss (the enumeration loop runs), never to injected values.
    """

    CS = staticmethod(lambda: [T.cmp("ult", T.var("a"), T.const(3), 8)])

    def test_roundtrip_across_sessions(self, tmp_path):
        cs, term = self.CS(), T.var("a")
        cold = SolverCache(persistent=DiskSolverCache(tmp_path))
        first = Solver(cache=cold).feasible_values(term, cs, limit=8)
        assert first.complete and sorted(first) == [0, 1, 2]
        warm = SolverCache(persistent=DiskSolverCache(tmp_path))
        second = Solver(cache=warm).feasible_values(term, cs, limit=8)
        assert (list(second), second.complete) == (list(first), True)
        assert warm.disk_hits >= 1

    def test_unevaluable_truncation_never_persisted(self, tmp_path):
        cs, term = self.CS(), T.var("a")
        cache = SolverCache(persistent=DiskSolverCache(tmp_path))
        from repro.solver import ValueEnumeration
        cache.store_values(term, SolverCache.key(cs), 8,
                           ValueEnumeration([1], complete=False,
                                            truncated_reason="unevaluable"),
                           witnesses=[{"a": 1}])
        assert cache.lookup_values_persistent(
            term, SolverCache.key(cs), 8) is None

    def test_poisoned_values_not_served(self, tmp_path):
        # a file claiming an extra (infeasible) value fails witness
        # re-verification wholesale and the loop re-enumerates
        cs, term = self.CS(), T.var("a")
        scratch = SolverCache()
        key = SolverCache.key(cs)
        disk = DiskSolverCache(tmp_path)
        disk.store_values(scratch.digest_key(key),
                          scratch.term_digest(term), 8,
                          [0, 1, 2, 99], True, None,
                          [{"a": 0}, {"a": 1}, {"a": 2}, {"a": 99}])
        cache = SolverCache(persistent=DiskSolverCache(tmp_path))
        result = Solver(cache=cache).feasible_values(term, cs, limit=8)
        assert 99 not in result
        assert sorted(result) == [0, 1, 2]
        assert cache.disk_hits == 0

    def test_witness_value_mismatch_rejected(self, tmp_path):
        # witnesses satisfy the constraints but the term evaluates to a
        # different value than the file claims -> still rejected
        cs, term = self.CS(), T.var("a")
        scratch = SolverCache()
        key = SolverCache.key(cs)
        disk = DiskSolverCache(tmp_path)
        disk.store_values(scratch.digest_key(key),
                          scratch.term_digest(term), 8,
                          [0, 7], True, None, [{"a": 0}, {"a": 1}])
        cache = SolverCache(persistent=DiskSolverCache(tmp_path))
        result = Solver(cache=cache).feasible_values(term, cs, limit=8)
        assert sorted(result) == [0, 1, 2]


class TestWriteNormalization:
    """Writers normalize exactly as readers do.

    Regression: ``store``/``store_values`` used to index witness-model
    and model keys as passed, while the JSONL replay path applies
    ``str()`` to every key — so a non-string term name made the local
    index diverge from what a fresh handle (or the writer itself after
    a refresh) reads back from disk.
    """

    def test_model_keys_roundtrip_nonstring(self, tmp_path):
        writer = DiskSolverCache(tmp_path)
        writer.store(["d1"], True, model={1: 7, "b": 2})
        local = writer.lookup(["d1"])
        fresh = DiskSolverCache(tmp_path).lookup(["d1"])
        assert local == fresh
        assert fresh[1] == {"1": 7, "b": 2}

    def test_witness_keys_roundtrip_nonstring(self, tmp_path):
        writer = DiskSolverCache(tmp_path)
        writer.store_values(["d1"], "t1", 8, [5], True, None, [{1: 5}])
        local = writer.lookup_values(["d1"], "t1", 8)
        fresh = DiskSolverCache(tmp_path).lookup_values(["d1"], "t1", 8)
        assert local == fresh
        values, complete, reason, witnesses = fresh
        assert witnesses == [{"1": 5}]

    def test_nonstring_term_digest_roundtrip(self, tmp_path):
        # a digest that is accidentally an int must hit the same index
        # locally as after a replay (JSON stores it as a string)
        writer = DiskSolverCache(tmp_path)
        writer.store_values(["d1"], 42, 8, [1], True, None, [{"a": 1}])
        assert writer.lookup_values(["d1"], 42, 8) is not None
        assert writer.lookup_values(["d1"], "42", 8) is not None
        fresh = DiskSolverCache(tmp_path)
        assert fresh.lookup_values(["d1"], 42, 8) \
            == writer.lookup_values(["d1"], "42", 8)
