"""Mini binary parser: Objdump/binutils CVE-2018-6323 (integer overflow).

The real bug: an unsigned integer overflow in ELF section bookkeeping
produces a bogus offset and an out-of-bounds access while disassembling.
The mini parser reads a little 'object file': a header with a section
count and per-section entry size, then walks the section table.  The
section offset is computed as ``index * entsize`` in 32 bits; a huge
entry size wraps the offset check and the walk reads past the file
buffer.  Symbol-name interning supplies the write chains.

The object file arrives on the ``obj`` stream.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..interp.failures import FailureKind
from ..ir.builder import ModuleBuilder
from ..ir.module import Module
from .base import Workload

FILE_BUF = 256
SYM_SLOTS = 16


def build_objdump() -> Module:
    b = ModuleBuilder("objdump-2018-6323")
    b.global_("file_buf", FILE_BUF)
    b.global_("sym_table", SYM_SLOTS * 8)

    # intern_sym(name4): hash a 4-byte symbol name into the table
    f = b.function("intern_sym", ["name"])
    f.block("entry")
    lo = f.and_("%name", 0xFF, dest="%b0")
    b1 = f.lshr("%name", 8)
    b1m = f.and_(b1, 0xFF, dest="%b1")
    h0 = f.add("%b0", "%b1", width=32)
    h1 = f.shl(h0, 1, width=32)
    h = f.add(h0, h1, width=32, dest="%h")
    slot = f.urem("%h", SYM_SLOTS, dest="%slot")
    tbl = f.global_addr("sym_table")
    sp = f.gep(tbl, "%slot", 8)
    f.store(sp, "%h", 8)
    f.ret("%slot")

    f = b.function("main", [])
    f.block("entry")
    fb = f.global_addr("file_buf", dest="%fb")
    f.jmp("file")
    f.block("file")
    # load a 'file': header magic, counts, then raw section data
    magic = f.input("obj", 2, dest="%magic")
    ok = f.cmp("eq", "%magic", 0x4C45, width=16)  # 'EL'
    f.br(ok, "hdr", "bad")
    f.block("hdr")
    nsec = f.input("obj", 1, dest="%nsec")
    small = f.cmp("ule", "%nsec", 8, width=8)
    f.br(small, "hdr2", "bad")
    f.block("hdr2")
    entsize = f.input("obj", 2, dest="%entsize")
    # read section payload into the file buffer (concrete indices)
    f.const(0, dest="%i")
    f.jmp("fill")
    f.block("fill")
    filled = f.cmp("uge", "%i", 64)
    f.br(filled, "walk", "fbody")
    f.block("fbody")
    byte = f.input("obj", 1, dest="%byte")
    p = f.gep("%fb", "%i", 1)
    f.store(p, "%byte", 1)
    f.add("%i", 1, dest="%i")
    f.jmp("fill")

    # symbol-table pass: intern the names packed at the front of the file
    f.block("walk")
    f.const(0, dest="%s")
    f.jmp("symloop")
    f.block("symloop")
    sdone = f.cmp("uge", "%s", 6)
    f.br(sdone, "sections", "sym")
    f.block("sym")
    soff = f.mul("%s", 8)
    snp = f.gep("%fb", soff, 1)
    sname = f.load(snp, 4, dest="%sname")
    f.call("intern_sym", ["%sname"])
    f.add("%s", 1, dest="%s")
    f.jmp("symloop")

    # walk sections: offset = idx * entsize, 32-bit (the overflow)
    f.block("sections")
    f.const(0, dest="%idx")
    f.jmp("wloop")
    f.block("wloop")
    done = f.cmp("uge", "%idx", "%nsec", width=8)
    f.br(done, "out", "wbody")  # 'out' loops back to the next file
    f.block("wbody")
    off = f.mul("%idx", "%entsize", width=32, dest="%off")
    # BUG: the end-of-entry bounds check is computed in 16 bits, so a
    # near-0xFFFF entry size wraps `end` to a tiny value while the raw
    # 32-bit offset is far past the buffer
    end = f.add("%off", 4, width=16, dest="%end")
    fits = f.cmp("ule", "%end", FILE_BUF, width=16)
    f.br(fits, "rd", "skip")
    f.block("rd")
    sp = f.gep("%fb", "%off", 1)
    name = f.load(sp, 4, dest="%name")      # OOB once off wraps
    f.call("intern_sym", ["%name"])
    # decode the section: per-entry operand decoding work
    f.const(0, dest="%d")
    f.jmp("decode")
    f.block("decode")
    ddone = f.cmp("uge", "%d", 40)
    f.br(ddone, "skip", "dbody")
    f.block("dbody")
    sh = f.lshr("%name", 2, width=32)
    f.xor(sh, "%d", width=32, dest="%name")
    f.add("%d", 1, dest="%d")
    f.jmp("decode")
    f.block("skip")
    f.add("%idx", 1, dest="%idx")
    f.jmp("wloop")
    f.block("bad")
    f.ret(1)
    f.block("out")
    f.jmp("file")
    return b.build()


def _obj_file(nsec: int, entsize: int, payload: bytes = b"") -> bytes:
    data = bytearray(b"EL")
    data.append(nsec & 0xFF)
    data += (entsize & 0xFFFF).to_bytes(2, "little")
    body = bytearray(payload[:64])
    body += bytes(64 - len(body))
    return bytes(data) + bytes(body)


def _failing_objdump(occurrence: int) -> Environment:
    rng = random.Random(200 + occurrence)
    payload = bytes(rng.randint(1, 255) for _ in range(64))
    # entsize 0xFFFE: section 1's offset is 0xFFFE (far out of bounds)
    # but the 16-bit end check wraps to 2 and passes
    return Environment({"obj": _obj_file(4, 0xFFFE, payload)})


def _benign_objdump(seed: int) -> Environment:
    rng = random.Random(seed)
    chunks = []
    for _ in range(rng.randint(30, 40)):
        payload = bytes(rng.randint(0, 255) for _ in range(64))
        chunks.append(_obj_file(rng.randint(1, 8), rng.randint(4, 60),
                                payload))
    return Environment({"obj": b"".join(chunks)})


def objdump_workloads():
    return [Workload(
        name="objdump-2018-6323", app="Objdump 2.26",
        bug_id="CVE-2018-6323",
        bug_type="Integer overflow", multithreaded=False,
        expected_kind=FailureKind.OUT_OF_BOUNDS,
        build=build_objdump,
        failing_env=_failing_objdump, benign_env=_benign_objdump,
        bench_name="Disassemble a large binary",
        work_limit=700,
        paper_occurrences=3, paper_instrs=323_788)]
