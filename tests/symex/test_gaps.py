"""Gap-tolerant shepherding: recovering lost TNT bits (§4)."""

import pytest

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.symex.gaps import replay_with_gap_recovery
from repro.trace.decoder import decode
from repro.trace.degrade import DEFAULT_LOSS, degrade_trace, gap_count
from repro.trace.encoder import PTEncoder
from repro.trace.packets import GapEvent, TntEvent
from repro.trace.ringbuffer import RingBuffer
from repro.workloads import get_workload


def traced_run(module, env):
    encoder = PTEncoder(RingBuffer())
    result = Interpreter(module, env, tracer=encoder).run()
    return result, decode(encoder.buffer)


class TestDegrade:
    def test_loss_rate_roughly_respected(self, table_module):
        run, trace = traced_run(table_module,
                                Environment({"stdin": bytes([5, 5])}))
        degraded = degrade_trace(trace, loss=1.0)
        assert gap_count(degraded) == trace.branch_count

    def test_zero_loss_identity(self, table_module):
        _, trace = traced_run(table_module,
                              Environment({"stdin": bytes([5, 5])}))
        degraded = degrade_trace(trace, loss=0.0)
        assert gap_count(degraded) == 0

    def test_seeded_determinism(self, abort_module):
        _, trace = traced_run(abort_module,
                              Environment({"stdin": b"\xc8"}))
        a = degrade_trace(trace, loss=0.5, seed=3)
        b = degrade_trace(trace, loss=0.5, seed=3)
        assert gap_count(a) == gap_count(b)

    def test_non_tnt_events_preserved(self, abort_module):
        _, trace = traced_run(abort_module,
                              Environment({"stdin": b"\xc8"}))
        degraded = degrade_trace(trace, loss=1.0)
        assert degraded.chunks[0].n_instrs == trace.chunks[0].n_instrs


class TestGapRecovery:
    def test_fully_degraded_single_branch(self, abort_module):
        run, trace = traced_run(abort_module,
                                Environment({"stdin": b"\xc8"}))
        degraded = degrade_trace(trace, loss=1.0)
        result = replay_with_gap_recovery(abort_module, degraded,
                                          run.failure)
        assert result.completed
        # the generated input still triggers the failure
        rerun = Interpreter(abort_module,
                            Environment(result.model.streams())).run()
        assert rerun.failure is not None

    def test_symbolic_gaps_searched(self, table_module):
        run, trace = traced_run(table_module,
                                Environment({"stdin": bytes([5, 5])}))
        degraded = degrade_trace(trace, loss=1.0)
        result = replay_with_gap_recovery(table_module, degraded,
                                          run.failure)
        assert result.completed
        stdin = result.model.streams()["stdin"]
        assert stdin[0] == stdin[1]  # the aliasing relation survives

    def test_paper_loss_rate_on_workloads(self):
        for name in ("libpng-2004-0597", "bash-108885",
                     "objdump-2018-6323"):
            workload = get_workload(name)
            module = workload.fresh_module()
            run, trace = traced_run(module, workload.failing_env(1))
            degraded = degrade_trace(trace, loss=DEFAULT_LOSS, seed=7)
            result = replay_with_gap_recovery(
                module, degraded, run.failure,
                work_limit=workload.work_limit * 20)
            assert result.status in ("completed", "stalled"), name

    def test_wrong_defaults_backtracked(self, abort_module):
        # the benign path: default 'taken' is wrong for this branch
        run, trace = traced_run(abort_module,
                                Environment({"stdin": b"\x01"}))
        assert run.failure is None
        degraded = degrade_trace(trace, loss=1.0)
        result = replay_with_gap_recovery(abort_module, degraded, None)
        assert result.completed
        assert result.gap_attempts >= 1

    def test_intact_trace_single_attempt(self, table_module):
        run, trace = traced_run(table_module,
                                Environment({"stdin": bytes([5, 5])}))
        result = replay_with_gap_recovery(table_module, trace,
                                          run.failure)
        assert result.completed and result.gap_attempts == 1
