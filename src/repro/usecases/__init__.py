"""Use cases the paper says ER unlocks for production failures (§2.4):
security forensics (input attribution) and directed fuzzing (seeding)."""

from .forensics import InputAttribution, attribute_failure
from .fuzzing import CoverageFuzzer, FuzzReport

__all__ = [
    "InputAttribution",
    "attribute_failure",
    "CoverageFuzzer",
    "FuzzReport",
]
