"""Benchmark: the pipelined loop and the persistent worker pool.

Two A/Bs, folded into ``benchmarks/out/BENCH_parallel.json`` under the
``"pipeline"`` key (the artifact the CI smoke job uploads and asserts
on):

* **Pool amortization** — two consecutive batches over the shared
  :class:`~repro.parallel.WorkerPool` must pay at most one worker
  spin-up total (the second batch is a generation refresh, not a
  respawn), versus one spin-up *per batch* with per-batch private
  pools.  The recorded ``spinup_reduction`` is the overhead the
  persistent pool removes.

* **Speculation accounting** — the pipelined loop run under a simulated
  production wait must produce byte-identical outcomes to the
  sequential loop while reporting how much speculative solver work it
  overlapped with the wait (``overlap_seconds``) and what fraction of
  speculative verdicts the strict commit rule could keep
  (``speculation_hit_rate``).  The hit rate is honest, not tuned:
  assignments over raw input bytes are unpredictable and discard.
"""

import json

from repro import telemetry
from repro.parallel import close_pool, get_pool, private_pool, run_batch

#: enough work to exercise several reconstruction iterations each
WORKLOADS = ["php-2012-2386", "sqlite-7be932d"]
POOL_WIDTH = 2
#: simulated wait between failure reoccurrences (the paper's
#: deployments take minutes-to-hours; 0.25 s keeps the bench fast)
REOCCURRENCE_DELAY = 0.25


def _outcomes(result):
    return [(item.workload, item.success, item.verified,
             item.occurrences) for item in result.items]


def _merged_counters(result):
    merged = telemetry.merge_snapshots(
        [item.telemetry for item in result.items])
    return merged.get("counters", {}), merged.get("histograms", {})


def test_pool_amortization_and_speculation(artifact_dir):
    # -- pool amortization: shared pool, two batches, one spin-up -----
    close_pool()
    shared_spinups = []
    try:
        for _ in range(2):
            run_batch(WORKLOADS, parallel=POOL_WIDTH)
            pool = get_pool(POOL_WIDTH)
            shared_spinups.append(pool.spinups)
        shared_pool = get_pool(POOL_WIDTH)
        shared_total, shared_jobs = shared_pool.spinups, shared_pool.jobs
    finally:
        close_pool()
    assert shared_jobs == 2
    assert shared_total <= 1, (
        f"expected the second batch to reuse the pool, "
        f"saw {shared_total} spin-ups over {shared_jobs} jobs")

    # baseline: a private pool per batch pays a spin-up every time
    private_spinups = 0
    for _ in range(2):
        with private_pool(POOL_WIDTH) as pool:
            run_batch(WORKLOADS, parallel=POOL_WIDTH, pool=pool)
            private_spinups += pool.spinups
    assert private_spinups == 2

    # -- pipelined vs sequential under a production wait --------------
    sequential = run_batch(WORKLOADS, parallel=1,
                           reoccurrence_delay=REOCCURRENCE_DELAY)
    pipelined = run_batch(WORKLOADS, parallel=1, pipeline=True,
                          reoccurrence_delay=REOCCURRENCE_DELAY)
    assert _outcomes(sequential) == _outcomes(pipelined), (
        "pipelined outcomes diverged from the sequential loop")

    counters, histograms = _merged_counters(pipelined)
    speculations = counters.get("pipeline.speculations", 0)
    commits = counters.get("pipeline.commits", 0)
    overlap = histograms.get("pipeline.overlap_seconds",
                             {}).get("sum", 0.0)

    block = {
        "workloads": WORKLOADS,
        "pool": {
            "width": POOL_WIDTH,
            "shared_batches": 2,
            "shared_spinups": shared_total,
            "shared_jobs": shared_jobs,
            "private_spinups": private_spinups,
            "spinup_reduction": private_spinups - shared_total,
        },
        "speculation": {
            "reoccurrence_delay_s": REOCCURRENCE_DELAY,
            "outcomes_identical": True,
            "speculations": speculations,
            "commits": commits,
            "discards": counters.get("pipeline.discards", 0),
            "unspeculable_stalls":
                counters.get("pipeline.unspeculable_stalls", 0),
            "enum_timeouts": counters.get("pipeline.enum_timeouts", 0),
            "speculation_hit_rate":
                round(commits / speculations, 4) if speculations
                else None,
            "overlap_seconds": round(overlap, 4),
            "sequential_wall_seconds":
                round(sequential.wall_seconds, 4),
            "pipelined_wall_seconds":
                round(pipelined.wall_seconds, 4),
        },
    }

    # fold into the batch benchmark's artifact (whichever ran first)
    path = artifact_dir / "BENCH_parallel.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data["pipeline"] = block
    path.write_text(json.dumps(data, indent=2) + "\n")
    print(f"\npool: {shared_total} spin-up(s) over {shared_jobs} shared "
          f"jobs vs {private_spinups} private; speculation: "
          f"{speculations} built, {commits} committed, "
          f"{overlap:.3f}s overlapped")
