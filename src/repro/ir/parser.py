"""Parser for the textual IR (the ``.eir`` format).

The grammar is line-oriented: one instruction per line, blocks introduced
by ``label:``, functions by ``func name(%a, %b) {`` ... ``}``, globals by
``global name size [= hexbytes]``.  ``;`` starts a comment.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from ..errors import IRParseError
from . import instructions as ins
from .instructions import BINARY_OPS, CMP_OPS, Operand
from .module import Function, Module

_FUNC_RE = re.compile(r"^func\s+(\w+)\s*\(([^)]*)\)\s*\{$")
_GLOBAL_RE = re.compile(r"^global\s+(\w+)\s+(\d+)(?:\s*=\s*([0-9a-fA-F]*))?$")
_LABEL_RE = re.compile(r"^([.\w]+):$")
_ASSIGN_RE = re.compile(r"^(%[\w.]+)\s*=\s*(.+)$")
_CALL_RE = re.compile(r"^(call|spawn)\s+(\w+)\s*\(([^)]*)\)$")
_OP_WIDTH_RE = re.compile(r"^(\w+)\.(\d+)$")


def _operand(token: str, line_no: int, line: str) -> Operand:
    token = token.strip()
    if token.startswith("%"):
        return token
    try:
        return int(token, 0)
    except ValueError:
        raise IRParseError(f"bad operand {token!r}", line_no, line) from None


def _split_args(text: str, line_no: int, line: str) -> List[Operand]:
    text = text.strip()
    if not text:
        return []
    return [_operand(t, line_no, line) for t in text.split(",")]


def _string_literal(text: str, line_no: int, line: str) -> str:
    text = text.strip()
    try:
        value = ast.literal_eval(text)
    except (ValueError, SyntaxError):
        raise IRParseError(f"bad string literal {text}", line_no, line) from None
    if not isinstance(value, str):
        raise IRParseError("expected a string literal", line_no, line)
    return value


class _Parser:
    def __init__(self, text: str):
        self.lines = text.splitlines()
        self.module = Module()
        self.func: Optional[Function] = None
        self.block = None

    def parse(self) -> Module:
        for line_no, raw in enumerate(self.lines, start=1):
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            self._parse_line(line, line_no, raw)
        if self.func is not None:
            raise IRParseError("unterminated function", len(self.lines), "")
        return self.module

    def _parse_line(self, line: str, line_no: int, raw: str) -> None:
        if line.startswith("module "):
            self.module.name = line[len("module "):].strip()
            return
        match = _GLOBAL_RE.match(line)
        if match:
            name, size, init_hex = match.groups()
            init = bytes.fromhex(init_hex) if init_hex else b""
            self.module.add_global(name, int(size), init)
            return
        match = _FUNC_RE.match(line)
        if match:
            if self.func is not None:
                raise IRParseError("nested function", line_no, raw)
            name, params = match.groups()
            param_list = [p.strip() for p in params.split(",") if p.strip()]
            for param in param_list:
                if not param.startswith("%"):
                    raise IRParseError(
                        f"parameter {param!r} must start with %", line_no, raw)
            self.func = Function(name, param_list)
            self.block = None
            return
        if line == "}":
            if self.func is None:
                raise IRParseError("stray '}'", line_no, raw)
            self.module.add_function(self.func)
            self.func = None
            self.block = None
            return
        if self.func is None:
            raise IRParseError("instruction outside function", line_no, raw)
        match = _LABEL_RE.match(line)
        if match:
            self.block = self.func.add_block(match.group(1))
            return
        if self.block is None:
            raise IRParseError("instruction before first label", line_no, raw)
        self.block.instrs.append(self._parse_instr(line, line_no, raw))

    def _parse_instr(self, line: str, line_no: int, raw: str) -> ins.Instr:
        match = _ASSIGN_RE.match(line)
        if match:
            dest, rhs = match.groups()
            return self._parse_assign(dest, rhs.strip(), line_no, raw)
        return self._parse_void(line, line_no, raw)

    def _parse_assign(self, dest: str, rhs: str, line_no: int,
                      raw: str) -> ins.Instr:
        match = _CALL_RE.match(rhs)
        if match:
            kind, func, args = match.groups()
            arg_list = _split_args(args, line_no, raw)
            if kind == "call":
                return ins.Call(dest, func, arg_list)
            return ins.Spawn(dest, func, arg_list)

        head, _, tail = rhs.partition(" ")
        tail = tail.strip()
        op, width = head, 64
        match = _OP_WIDTH_RE.match(head)
        if match:
            op, width = match.group(1), int(match.group(2))

        if op == "const":
            return ins.Const(dest, int(tail, 0))
        if op in BINARY_OPS:
            lhs, rhs_op = self._two(tail, line_no, raw)
            return ins.BinOp(dest, op, lhs, rhs_op, width)
        if op == "cmp":
            cmp_head, _, cmp_tail = tail.partition(" ")
            cmp_op, cmp_width = cmp_head, 64
            match = _OP_WIDTH_RE.match(cmp_head)
            if match:
                cmp_op, cmp_width = match.group(1), int(match.group(2))
            if cmp_op not in CMP_OPS:
                raise IRParseError(f"bad cmp op {cmp_op!r}", line_no, raw)
            lhs, rhs_op = self._two(cmp_tail, line_no, raw)
            return ins.Cmp(dest, cmp_op, lhs, rhs_op, cmp_width)
        if op == "select":
            cond, if_true, if_false = self._three(tail, line_no, raw)
            return ins.Select(dest, cond, if_true, if_false)
        if op == "trunc":
            return ins.Trunc(dest, _operand(tail, line_no, raw), width)
        if op == "sext":
            return ins.SExt(dest, _operand(tail, line_no, raw), width)
        if op == "global":
            return ins.GlobalAddr(dest, tail)
        if op == "alloca":
            name, size = tail.split(",", 1)
            return ins.FrameAlloc(dest, name.strip(), int(size, 0))
        if op == "malloc":
            return ins.HeapAlloc(dest, _operand(tail, line_no, raw))
        if op == "gep":
            base, index, scale = self._three(tail, line_no, raw)
            if not isinstance(scale, int):
                raise IRParseError("gep scale must be an integer", line_no, raw)
            return ins.Gep(dest, base, index, scale)
        if op == "load":
            size = width if match else 8
            return ins.Load(dest, _operand(tail, line_no, raw), size)
        if op == "input":
            stream, size = tail.split(",", 1)
            return ins.Input(dest, stream.strip(), int(size, 0))
        raise IRParseError(f"unknown instruction {head!r}", line_no, raw)

    def _parse_void(self, line: str, line_no: int, raw: str) -> ins.Instr:
        match = _CALL_RE.match(line)
        if match:
            kind, func, args = match.groups()
            if kind != "call":
                raise IRParseError("spawn requires a destination", line_no, raw)
            return ins.Call(None, func, _split_args(args, line_no, raw))

        head, _, tail = line.partition(" ")
        tail = tail.strip()
        op, width = head, 64
        match = _OP_WIDTH_RE.match(head)
        if match:
            op, width = match.group(1), int(match.group(2))

        if op == "store":
            size = width if match else 8
            addr, value = self._two(tail, line_no, raw)
            return ins.Store(addr, value, size)
        if op == "jmp":
            return ins.Jmp(tail)
        if op == "br":
            parts = [p.strip() for p in tail.split(",")]
            if len(parts) != 3:
                raise IRParseError("br needs cond, l1, l2", line_no, raw)
            return ins.Br(_operand(parts[0], line_no, raw), parts[1], parts[2])
        if op == "ret":
            if not tail:
                return ins.Ret(None)
            return ins.Ret(_operand(tail, line_no, raw))
        if op == "free":
            return ins.HeapFree(_operand(tail, line_no, raw))
        if op == "output":
            parts = [p.strip() for p in tail.split(",")]
            if len(parts) != 3:
                raise IRParseError("output needs stream, value, size",
                                   line_no, raw)
            return ins.Output(parts[0], _operand(parts[1], line_no, raw),
                              int(parts[2], 0))
        if op == "assert":
            cond_text, _, message = tail.partition(",")
            return ins.Assert(_operand(cond_text, line_no, raw),
                              _string_literal(message, line_no, raw))
        if op == "abort":
            message = _string_literal(tail, line_no, raw) if tail else "abort"
            return ins.Abort(message)
        if op == "ptwrite":
            value, tag = self._two(tail, line_no, raw)
            if not isinstance(tag, int):
                raise IRParseError("ptwrite tag must be an integer",
                                   line_no, raw)
            return ins.PtWrite(value, tag)
        if op == "join":
            return ins.Join(_operand(tail, line_no, raw))
        if op == "lock":
            return ins.Lock(_operand(tail, line_no, raw))
        if op == "unlock":
            return ins.Unlock(_operand(tail, line_no, raw))
        if op == "nop":
            return ins.Nop()
        raise IRParseError(f"unknown instruction {head!r}", line_no, raw)

    def _two(self, text: str, line_no: int, raw: str):
        parts = _split_args(text, line_no, raw)
        if len(parts) != 2:
            raise IRParseError("expected two operands", line_no, raw)
        return parts[0], parts[1]

    def _three(self, text: str, line_no: int, raw: str):
        parts = _split_args(text, line_no, raw)
        if len(parts) != 3:
            raise IRParseError("expected three operands", line_no, raw)
        return parts[0], parts[1], parts[2]


def parse_module(text: str) -> Module:
    """Parse IR text into a :class:`Module` (verified by the caller)."""
    return _Parser(text).parse()
