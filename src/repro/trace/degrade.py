"""Simulating control-flow information loss (§4's mapping gap).

The paper's prototype maps x86_64 control-flow events onto LLVM IR and
loses ~8.5 % of them to compiler optimizations.  :func:`degrade_trace`
models that: a seeded fraction of TNT bits are replaced by
:class:`~repro.trace.packets.GapEvent`, and the gap-tolerant replay in
``repro.symex.gaps`` must recover the missing outcomes.
"""

from __future__ import annotations

import logging
import random
from typing import Optional

from .. import telemetry
from .decoder import DecodedChunk, DecodedTrace
from .packets import GapEvent, TntEvent

logger = logging.getLogger(__name__)

#: the paper's measured mapping accuracy: 91.5 % of events survive
DEFAULT_LOSS = 0.085


def degrade_trace(trace: DecodedTrace, loss: float = DEFAULT_LOSS,
                  seed: Optional[int] = 0) -> DecodedTrace:
    """A copy of ``trace`` with a fraction of TNT bits turned into gaps."""
    rng = random.Random(seed)
    chunks = []
    lost = 0
    for chunk in trace.chunks:
        events = []
        for e in chunk.events:
            if isinstance(e, TntEvent) and rng.random() < loss:
                events.append(GapEvent())
                lost += 1
            else:
                events.append(e)
        chunks.append(DecodedChunk(tid=chunk.tid,
                                   timestamp=chunk.timestamp,
                                   n_instrs=chunk.n_instrs,
                                   events=events))
    tel = telemetry.get()
    tel.count("trace.degradations")
    tel.count("trace.tnt_bits_lost", lost)
    tel.event("trace.degrade", loss=loss, bits_lost=lost, seed=seed)
    if lost:
        logger.debug("degraded trace: %d TNT bits -> gaps (loss=%.3f)",
                     lost, loss)
    return DecodedTrace(chunks=chunks, truncated=trace.truncated)


def gap_count(trace: DecodedTrace) -> int:
    return sum(1 for chunk in trace.chunks for e in chunk.events
               if isinstance(e, GapEvent))
