"""Benchmark: substrate throughput at scale.

Not a paper experiment; a guard that the simulator stack stays usable as
traces grow — a ~200 K-instruction execution through the whole pipeline
(interpret + encode, decode, shepherded replay).
"""

import pytest

from repro.interp.env import Environment
from repro.interp.interpreter import Interpreter
from repro.ir.builder import ModuleBuilder
from repro.symex.engine import ShepherdedSymex
from repro.trace.decoder import decode
from repro.trace.encoder import PTEncoder
from repro.trace.ringbuffer import RingBuffer


def big_module(outer=2000):
    """~100 instructions per outer iteration: hashing + table updates.

    The hot loop is concrete (symbolic state would make this a *stall*
    scenario, which benchmarks/test_ablations.py covers); a symbolic
    check at the end keeps the run a real shepherded replay.
    """
    b = ModuleBuilder("big")
    b.global_("T", 4096)
    f = b.function("main", [])
    f.block("entry")
    g = f.global_addr("T", dest="%T")
    f.const(0x9E3779B9, dest="%h")
    f.const(0, dest="%i")
    f.jmp("outer")
    f.block("outer")
    done = f.cmp("uge", "%i", outer)
    f.br(done, "fin", "work")
    f.block("work")
    f.const(0, dest="%j")
    f.jmp("inner")
    f.block("inner")
    idone = f.cmp("uge", "%j", 10)
    f.br(idone, "store", "ibody")
    f.block("ibody")
    sh = f.shl("%h", 1, width=32)
    x = f.xor(sh, "%j", width=32)
    f.add(x, "%i", width=32, dest="%h")
    f.add("%j", 1, dest="%j")
    f.jmp("inner")
    f.block("store")
    slot = f.and_("%h", 4095)
    p = f.gep("%T", slot, 1)
    f.store(p, "%i", 1)
    f.add("%i", 1, dest="%i")
    f.jmp("outer")
    f.block("fin")
    tag = f.input("stdin", 1, dest="%tag")
    ok = f.cmp("ne", "%tag", 0xEE, width=8)
    f.assert_(ok, "poison tag")
    f.output("stdout", "%h", 4)
    f.ret(0)
    return b.build()


@pytest.fixture(scope="module")
def big():
    return big_module()


@pytest.mark.benchmark(group="throughput")
def test_interpret_and_trace(benchmark, big):
    def run():
        encoder = PTEncoder(RingBuffer())
        env = Environment({"stdin": b"\x01\x02\x03\x04"})
        result = Interpreter(big, env, tracer=encoder).run()
        return result, encoder

    result, encoder = benchmark(run)
    assert result.failure is None
    assert result.instr_count > 150_000
    # PT efficiency: well under one trace byte per instruction
    assert encoder.bytes_emitted < result.instr_count / 4


@pytest.mark.benchmark(group="throughput")
def test_decode(benchmark, big):
    encoder = PTEncoder(RingBuffer())
    env = Environment({"stdin": b"\x01\x02\x03\x04"})
    run = Interpreter(big, env, tracer=encoder).run()

    trace = benchmark(lambda: decode(encoder.buffer))
    assert trace.instr_count == run.instr_count


@pytest.mark.benchmark(group="throughput")
def test_shepherded_replay(benchmark, big):
    encoder = PTEncoder(RingBuffer())
    env = Environment({"stdin": b"\x01\x02\x03\x04"})
    run = Interpreter(big, env, tracer=encoder).run()
    trace = decode(encoder.buffer)

    def replay():
        return ShepherdedSymex(big, trace, None,
                               work_limit=100_000_000).run()

    result = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert result.completed
    assert result.stats.instrs_executed == run.instr_count
