"""Mini coreutils (od, pr): the §5.4 MIMIC case-study programs.

These are not Table-1 rows; they host the invariant-based failure
localization experiment.  Each has a clear root-cause function whose
argument invariants (learned from passing runs) are violated on the
failing input:

* **od** — the argument parser accepts a column width of 0 and
  ``format_line`` divides by it (the od fault from the MIMIC paper's
  coreutils set, modelled as a width-validation bug).
* **pr** — the column layout subtracts the inter-column gap from the
  page width without checking it fits; too many columns underflows the
  unsigned column width and the line copy overruns its buffer.

Arguments arrive on ``argv``; data on ``data``.
"""

from __future__ import annotations

import random

from ..interp.env import Environment
from ..ir.builder import ModuleBuilder
from ..ir.module import Module


def build_od() -> Module:
    b = ModuleBuilder("coreutils-od")
    b.global_("data_buf", 64)

    # parse_width(): reads the -w argument; BUG: 0 is not rejected
    f = b.function("parse_width", [])
    f.block("entry")
    w = f.input("argv", 1, dest="%w")
    big = f.cmp("ule", "%w", 16, width=8)
    f.br(big, "ok", "clamp")
    f.block("clamp")
    f.const(16, dest="%w")
    f.jmp("ok")
    f.block("ok")
    f.ret("%w")

    # format_line(offset, width): emits one output line
    f = b.function("format_line", ["offset", "width"])
    f.block("entry")
    db = f.global_addr("data_buf", dest="%db")
    cols = f.udiv(16, "%width", dest="%cols")   # div-by-zero when w == 0
    f.const(0, dest="%c")
    f.const(0, dest="%acc")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%c", "%cols")
    f.br(done, "out", "body")
    f.block("body")
    idx = f.add("%offset", "%c", dest="%idx")
    wrapped = f.urem("%idx", 64, dest="%wr")
    p = f.gep("%db", "%wr", 1)
    v = f.load(p, 1)
    f.add("%acc", v, dest="%acc")
    f.add("%c", 1, dest="%c")
    f.jmp("loop")
    f.block("out")
    f.output("stdout", "%acc", 4)
    f.ret("%acc")

    f = b.function("main", [])
    f.block("entry")
    width = f.call("parse_width", [], dest="%width")
    db = f.global_addr("data_buf", dest="%db")
    f.const(0, dest="%i")
    f.jmp("fill")
    f.block("fill")
    done = f.cmp("uge", "%i", 32)
    f.br(done, "dump", "fbody")
    f.block("fbody")
    ch = f.input("data", 1)
    p = f.gep("%db", "%i", 1)
    f.store(p, ch, 1)
    f.add("%i", 1, dest="%i")
    f.jmp("fill")
    f.block("dump")
    f.const(0, dest="%off")
    f.jmp("lines")
    f.block("lines")
    fin = f.cmp("uge", "%off", 32)
    f.br(fin, "out", "line")
    f.block("line")
    f.call("format_line", ["%off", "%width"])
    f.add("%off", 8, dest="%off")
    f.jmp("lines")
    f.block("out")
    f.ret(0)
    return b.build()


def od_env(width: int, seed: int = 0) -> Environment:
    rng = random.Random(seed)
    return Environment({"argv": bytes((width,)),
                        "data": bytes(rng.randint(0, 255)
                                      for _ in range(32))})


def od_passing_envs():
    return [od_env(w, seed=w) for w in (1, 2, 4, 8)]


def od_failing_env(seed: int = 99) -> Environment:
    return od_env(0, seed=seed)


# ----------------------------------------------------------------------

def build_pr() -> Module:
    b = ModuleBuilder("coreutils-pr")
    b.global_("line_buf", 80)
    b.global_("out_buf", 96)

    # layout(cols, page_width): per-column width; BUG: gap underflow
    f = b.function("layout", ["cols", "page_width"])
    f.block("entry")
    gaps = f.sub("%cols", 1, dest="%gaps")
    gap_total = f.mul("%gaps", 4, dest="%gap_total")
    usable = f.sub("%page_width", "%gap_total", dest="%usable")  # wraps!
    colw = f.udiv("%usable", "%cols", dest="%colw")
    f.ret("%colw")

    # emit_row(colw): copies colw bytes per column into out_buf
    f = b.function("emit_row", ["colw", "cols"])
    f.block("entry")
    ob = f.global_addr("out_buf", dest="%ob")
    lb = f.global_addr("line_buf", dest="%lb")
    f.const(0, dest="%c")
    f.const(0, dest="%o")
    f.jmp("cols_loop")
    f.block("cols_loop")
    done = f.cmp("uge", "%c", "%cols")
    f.br(done, "out", "col")
    f.block("col")
    f.const(0, dest="%k")
    f.jmp("copy")
    f.block("copy")
    cdone = f.cmp("uge", "%k", "%colw")
    f.br(cdone, "next_col", "cbody")
    f.block("cbody")
    sp = f.gep("%lb", "%k", 1)
    ch = f.load(sp, 1)
    dp = f.gep("%ob", "%o", 1)
    f.store(dp, ch, 1)              # overruns out_buf when colw is huge
    f.add("%k", 1, dest="%k")
    f.add("%o", 1, dest="%o")
    f.jmp("copy")
    f.block("next_col")
    f.add("%c", 1, dest="%c")
    f.jmp("cols_loop")
    f.block("out")
    f.ret("%o")

    f = b.function("main", [])
    f.block("entry")
    cols = f.input("argv", 1, dest="%cols")
    some = f.cmp("ugt", "%cols", 0, width=8)
    f.br(some, "width", "bad")
    f.block("width")
    pw = f.input("argv", 1, dest="%pw")
    lb = f.global_addr("line_buf", dest="%lb")
    f.const(0, dest="%i")
    f.jmp("fill")
    f.block("fill")
    done = f.cmp("uge", "%i", 40)
    f.br(done, "go", "fbody")
    f.block("fbody")
    ch = f.input("data", 1)
    p = f.gep("%lb", "%i", 1)
    f.store(p, ch, 1)
    f.add("%i", 1, dest="%i")
    f.jmp("fill")
    f.block("go")
    colw = f.call("layout", ["%cols", "%pw"], dest="%colw")
    f.call("emit_row", ["%colw", "%cols"])
    f.ret(0)
    f.block("bad")
    f.ret(1)
    return b.build()


def pr_env(cols: int, page_width: int, seed: int = 0) -> Environment:
    rng = random.Random(seed)
    return Environment({"argv": bytes((cols, page_width)),
                        "data": bytes(rng.randint(32, 126)
                                      for _ in range(40))})


def pr_passing_envs():
    return [pr_env(1, 72, seed=1), pr_env(2, 72, seed=2),
            pr_env(3, 60, seed=3), pr_env(2, 48, seed=4)]


def pr_failing_env(seed: int = 99) -> Environment:
    # 9 columns on a 24-wide page: gap total 32 > 24, usable wraps
    return pr_env(9, 24, seed=seed)


def coreutils_modules():
    """(name, module, passing envs, failing env) for the case study."""
    return [
        ("od", build_od(), od_passing_envs(), od_failing_env()),
        ("pr", build_pr(), pr_passing_envs(), pr_failing_env()),
    ]
