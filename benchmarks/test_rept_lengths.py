"""Benchmark: REPT recovery error vs trace length (§2.2/§5.2 trend).

The paper: REPT incorrectly recovers 15–60 % of values once traces pass
~100 K instructions, because programs overwrite data.  We sweep the
value-churn length of one program and chart the error growth — the
crossover ER's full-trace reconstruction avoids by construction.
"""

import pytest

from repro.baselines.rept import ReptAnalyzer
from repro.evaluation.formatting import render_table
from repro.interp.env import Environment
from repro.ir.builder import ModuleBuilder


def churn_module(iterations):
    """Input-derived values overwritten in a loop, then a crash."""
    b = ModuleBuilder(f"churn-{iterations}")
    b.global_("G", 256)
    f = b.function("main", [])
    f.block("entry")
    a = f.input("stdin", 1, dest="%a")
    bb = f.input("stdin", 1, dest="%b")
    f.add("%a", "%b", dest="%x")
    f.const(0, dest="%i")
    f.jmp("loop")
    f.block("loop")
    done = f.cmp("uge", "%i", iterations)
    f.br(done, "fin", "body")
    f.block("body")
    g = f.global_addr("G")
    idx = f.and_("%i", 255)
    p = f.gep(g, idx, 1)
    f.store(p, "%x", 1)           # overwrites destroy recovery anchors
    f.xor("%x", "%i", dest="%x")
    mix = f.input("stdin", 1)     # fresh non-determinism each round
    f.add("%x", mix, dest="%x")
    f.add("%i", 1, dest="%i")
    f.jmp("loop")
    f.block("fin")
    f.abort("crash after churn")
    return b.build()


@pytest.mark.benchmark(group="rept-lengths")
def test_rept_error_vs_trace_length(benchmark, save_artifact):
    def run():
        rows = []
        for iterations in (4, 16, 64, 256, 1024):
            module = churn_module(iterations)
            env = Environment({"stdin": bytes(range(1, 200))})
            report = ReptAnalyzer().analyze(module, env)
            rows.append((iterations * 9 + 5, report.total_defs,
                         report.error_rate))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["trace length (instrs)", "value defs", "REPT wrong or missing"],
        [[length, defs, f"{rate * 100:.1f}%"] for length, defs, rate
         in rows],
        "REPT recovery error vs trace length (paper: 15-60% wrong "
        "beyond 100K instructions)")
    save_artifact("rept_lengths", table)
    rates = [rate for _l, _d, rate in rows]
    # error grows (weakly) with length and exceeds 15% for long traces
    assert rates[-1] >= rates[0]
    assert rates[-1] > 0.15
